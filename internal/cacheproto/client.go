package cacheproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
)

// Client speaks the text protocol to one cache server over a single TCP
// connection. It implements kvcache.Cache and is safe for concurrent use
// (operations serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	addr string
}

var _ kvcache.Cache = (*Client)(nil)

// Dial connects to a cache server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cacheproto: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
		addr: addr,
	}, nil
}

// Addr returns the server address this client is connected to.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "quit\r\n")
	_ = c.w.Flush()
	return c.conn.Close()
}

func ttlSeconds(ttl time.Duration) int {
	if ttl <= 0 {
		return 0
	}
	secs := int(ttl / time.Second)
	if secs == 0 {
		secs = 1
	}
	return secs
}

// roundTrip sends one command (with optional data block) and returns the
// first response line.
func (c *Client) roundTrip(cmd string, data []byte) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.WriteString(cmd)
	c.w.WriteString("\r\n")
	if data != nil {
		c.w.Write(data)
		c.w.WriteString("\r\n")
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// fetch runs get/gets and parses VALUE blocks. It takes c.mu itself —
// callers must NOT hold it.
func (c *Client) fetch(cmd, key string) (val []byte, cas uint64, found bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "%s %s\r\n", cmd, key)
	if err := c.w.Flush(); err != nil {
		return nil, 0, false, err
	}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, 0, false, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return val, cas, found, nil
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[0] != "VALUE" {
			return nil, 0, false, fmt.Errorf("cacheproto: bad response line %q", line)
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, 0, false, fmt.Errorf("cacheproto: bad length in %q", line)
		}
		if len(fields) >= 5 {
			cas, err = strconv.ParseUint(fields[4], 10, 64)
			if err != nil {
				return nil, 0, false, fmt.Errorf("cacheproto: bad cas in %q", line)
			}
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, 0, false, err
		}
		val = buf[:n]
		found = true
	}
}

// Get implements kvcache.Cache. Network errors surface as misses; callers
// fall back to the database, which is the correct degraded behaviour.
func (c *Client) Get(key string) ([]byte, bool) {
	v, _, ok, err := c.fetch("get", key)
	if err != nil {
		return nil, false
	}
	return v, ok
}

// Gets implements kvcache.Cache.
func (c *Client) Gets(key string) ([]byte, uint64, bool) {
	v, cas, ok, err := c.fetch("gets", key)
	if err != nil {
		return nil, 0, false
	}
	return v, cas, ok
}

// set is Set with the connection error exposed (for the Pool).
func (c *Client) set(key string, value []byte, ttl time.Duration) error {
	_, err := c.roundTrip(fmt.Sprintf("set %s 0 %d %d", key, ttlSeconds(ttl), len(value)), value)
	return err
}

// Set implements kvcache.Cache.
func (c *Client) Set(key string, value []byte, ttl time.Duration) {
	_ = c.set(key, value, ttl)
}

// add is Add with the connection error exposed (for the Pool).
func (c *Client) add(key string, value []byte, ttl time.Duration) (bool, error) {
	line, err := c.roundTrip(fmt.Sprintf("add %s 0 %d %d", key, ttlSeconds(ttl), len(value)), value)
	return err == nil && line == "STORED", err
}

// Add implements kvcache.Cache.
func (c *Client) Add(key string, value []byte, ttl time.Duration) bool {
	ok, _ := c.add(key, value, ttl)
	return ok
}

// cas is Cas with the connection error exposed (for the Pool).
func (c *Client) cas(key string, value []byte, ttl time.Duration, cas uint64) (kvcache.CasResult, error) {
	line, err := c.roundTrip(
		fmt.Sprintf("cas %s 0 %d %d %d", key, ttlSeconds(ttl), len(value), cas), value)
	if err != nil {
		return kvcache.CasNotFound, err
	}
	switch line {
	case "STORED":
		return kvcache.CasStored, nil
	case "EXISTS":
		return kvcache.CasConflict, nil
	default:
		return kvcache.CasNotFound, nil
	}
}

// Cas implements kvcache.Cache.
func (c *Client) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	r, _ := c.cas(key, value, ttl, cas)
	return r
}

// del is Delete with the connection error exposed (for the Pool).
func (c *Client) del(key string) (bool, error) {
	line, err := c.roundTrip("delete "+key, nil)
	return err == nil && line == "DELETED", err
}

// Delete implements kvcache.Cache.
func (c *Client) Delete(key string) bool {
	ok, _ := c.del(key)
	return ok
}

// incr is Incr with the connection error exposed (for the Pool).
func (c *Client) incr(key string, delta int64) (int64, bool, error) {
	line, err := c.roundTrip(fmt.Sprintf("incr %s %d", key, delta), nil)
	if err != nil {
		return 0, false, err
	}
	if line == "NOT_FOUND" || strings.HasPrefix(line, "CLIENT_ERROR") {
		return 0, false, nil
	}
	n, perr := strconv.ParseInt(line, 10, 64)
	if perr != nil {
		return 0, false, nil
	}
	return n, true, nil
}

// Incr implements kvcache.Cache.
func (c *Client) Incr(key string, delta int64) (int64, bool) {
	n, ok, _ := c.incr(key, delta)
	return n, ok
}

// flushAll is FlushAll with the connection error exposed (for the Pool).
func (c *Client) flushAll() error {
	_, err := c.roundTrip("flush_all", nil)
	return err
}

// FlushAll implements kvcache.Cache.
func (c *Client) FlushAll() {
	_ = c.flushAll()
}

var _ kvcache.BatchApplier = (*Client)(nil)

// ApplyBatch implements kvcache.BatchApplier over the pipelined mop command:
// every op in the batch is written in one flush and all results are read
// back together, so the batch costs a single network round trip instead of
// one per op. Network errors surface as zero-valued results (not-found /
// not-stored), mirroring the per-op methods' degraded behaviour.
func (c *Client) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	out, _ := c.applyBatch(ops)
	return out
}

// applyBatch is ApplyBatch with the connection error exposed, so the Pool
// can discard a conn whose mop exchange broke mid-stream.
//
// Ops the server is guaranteed to refuse (a value over its size cap) are
// skipped client-side — their result stays zero-valued — instead of being
// pipelined: the server answers an oversized set by aborting the whole
// batch, which would throw away every other op flushed with it (an
// invalidation bus batch coalesces unrelated deletes into the same mop; one
// bad set must not cancel those).
func (c *Client) applyBatch(ops []kvcache.BatchOp) ([]kvcache.BatchResult, error) {
	out := make([]kvcache.BatchResult, len(ops))
	if len(ops) == 0 {
		return out, nil
	}
	send := make([]int, 0, len(ops)) // indices of ops actually pipelined
	for i, op := range ops {
		if !validKey(op.Key) {
			continue
		}
		if op.Kind == kvcache.BatchSet && len(op.Value) > maxValueBytes {
			continue
		}
		send = append(send, i)
	}
	if len(send) == 0 {
		return out, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "mop %d\r\n", len(send))
	for _, i := range send {
		op := ops[i]
		switch op.Kind {
		case kvcache.BatchSet:
			fmt.Fprintf(c.w, "set %s 0 %d %d\r\n", op.Key, ttlSeconds(op.TTL), len(op.Value))
			c.w.Write(op.Value)
			c.w.WriteString("\r\n")
		case kvcache.BatchIncr:
			fmt.Fprintf(c.w, "incr %s %d\r\n", op.Key, op.Delta)
		default:
			fmt.Fprintf(c.w, "delete %s\r\n", op.Key)
		}
	}
	if err := c.w.Flush(); err != nil {
		return out, err
	}
	for n, i := range send {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return out, err
		}
		line = strings.TrimRight(line, "\r\n")
		if isErrorLine(line) {
			// The server aborted the batch: it sent this error line instead
			// of the remaining results and the trailing END, so the stream is
			// unframed from here. Surface an error so the Pool discards the
			// connection rather than parsing the error as an op result (a
			// delete would read it as not-found) and then hanging on END.
			return out, fmt.Errorf("cacheproto: mop aborted at op %d: %s", n, line)
		}
		switch ops[i].Kind {
		case kvcache.BatchSet:
			out[i] = kvcache.BatchResult{Found: line == "STORED"}
		case kvcache.BatchIncr:
			if n, perr := strconv.ParseInt(line, 10, 64); perr == nil {
				out[i] = kvcache.BatchResult{Found: true, Value: n}
			}
		default:
			out[i] = kvcache.BatchResult{Found: line == "DELETED"}
		}
	}
	// Trailing END frames the batch response.
	line, err := c.r.ReadString('\n')
	if err != nil {
		return out, err
	}
	if strings.TrimRight(line, "\r\n") != "END" {
		return out, fmt.Errorf("cacheproto: mop response unframed: %q", line)
	}
	return out, nil
}

// isErrorLine reports whether a response line is one of the protocol's error
// replies (memcached's ERROR / CLIENT_ERROR msg / SERVER_ERROR msg), which
// can replace a result line mid-batch when the server aborts.
func isErrorLine(line string) bool {
	return line == "ERROR" ||
		strings.HasPrefix(line, "CLIENT_ERROR") ||
		strings.HasPrefix(line, "SERVER_ERROR")
}

// maxKeyBytes is memcached's classic key-length bound.
const maxKeyBytes = 250

// validKey reports whether key is expressible in the text protocol:
// non-empty, bounded, and free of whitespace and control characters
// (memcached's key rules). A key that fails this would split into extra
// protocol fields on the wire and make the server abort the exchange.
func validKey(key string) bool {
	if key == "" || len(key) > maxKeyBytes {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// ServerStats fetches the server's counters.
func (c *Client) ServerStats() (map[string]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, errors.New("cacheproto: bad stats line " + line)
		}
		n, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, err
		}
		out[fields[1]] = n
	}
}
