package cacheproto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"time"

	"cachegenie/internal/kvcache"
)

// Client speaks the text protocol to one cache server over a single TCP
// connection. It implements kvcache.Cache and is safe for concurrent use
// (operations serialize on the connection).
//
// Requests are assembled into a reusable per-client buffer with
// strconv.Append* and responses are parsed in place from the read buffer,
// so the request path does not allocate; only fetched values do (they are
// returned to the caller and must survive the next operation).
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	addr      string
	opTimeout time.Duration
	broken    bool // an exchange died mid-stream; the framing is gone

	wbuf   []byte   // request build buffer
	line   []byte   // overflow line assembly
	fields [][]byte // response field headers
}

var _ kvcache.Cache = (*Client)(nil)

// Dial connects to a cache server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0)
}

// DialTimeout connects to a cache server and arms every subsequent
// operation with a connection deadline: a round trip that has not completed
// within opTimeout fails with a timeout error instead of blocking forever.
// A node that accepts connections but never answers — wedged process, black-
// holed network — then degrades to misses and feeds the pool's circuit
// breaker rather than pinning the caller. opTimeout 0 disables deadlines.
func DialTimeout(addr string, opTimeout time.Duration) (*Client, error) {
	var conn net.Conn
	var err error
	if opTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, opTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("cacheproto: dial %s: %w", addr, err)
	}
	return &Client{
		conn:      conn,
		r:         bufio.NewReader(conn),
		w:         bufio.NewWriter(conn),
		addr:      addr,
		opTimeout: opTimeout,
		fields:    make([][]byte, 0, 8),
	}, nil
}

// Addr returns the server address this client is connected to.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection, sending a best-effort quit first so the
// server tears down cleanly; the op deadline bounds the farewell too.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.broken {
		c.armDeadline()
		_, _ = c.w.WriteString("quit\r\n")
		_ = c.w.Flush()
	}
	return c.conn.Close()
}

// armDeadline sets the per-operation connection deadline. Caller holds c.mu.
//
//genie:hotpath
func (c *Client) armDeadline() {
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	}
}

var errClientBroken = errors.New("cacheproto: connection broken by an earlier failed exchange")

// fail poisons the connection after an exchange died mid-stream (I/O error,
// timeout, unparseable response): the framing is gone, so a later operation
// could read the dead exchange's late-arriving bytes as its own response —
// a timed-out Get's value coming back as a HIT for a different key. Every
// subsequent operation fails fast instead. The Pool never needs this (it
// discards errored conns), but a bare Client must degrade to misses, never
// to wrong answers. Caller holds c.mu; the error passes through.
func (c *Client) fail(err error) error {
	if err != nil && !c.broken {
		c.broken = true
		_ = c.conn.Close()
	}
	return err
}

//genie:hotpath
func ttlSeconds(ttl time.Duration) int64 {
	if ttl <= 0 {
		return 0
	}
	secs := int64(ttl / time.Second)
	if secs == 0 {
		secs = 1
	}
	return secs
}

// readLine returns the next response line with \r\n trimmed. The slice
// points into the read buffer (or c.line) and is valid until the next read.
//
//genie:deadlinearmed every caller arms the per-op deadline before the exchange
func (c *Client) readLine() ([]byte, error) {
	return readProtoLine(c.r, &c.line)
}

// cmd starts a fresh request in the build buffer.
//
//genie:hotpath
func (c *Client) cmd() []byte { return c.wbuf[:0] }

// sendLine writes the built command line (plus optional data block) and
// flushes. Caller holds c.mu. Intermediate write errors surface as bufio's
// sticky error on the final Flush.
//
//genie:deadlinearmed every caller arms the per-op deadline before the exchange
//genie:hotpath
func (c *Client) sendLine(b []byte, data []byte) error {
	b = append(b, '\r', '\n')
	c.wbuf = b
	c.w.Write(b)
	if data != nil {
		c.w.Write(data)
		c.w.WriteString("\r\n")
	}
	return c.w.Flush()
}

// roundTrip sends the built command and returns the first response line.
// Caller holds c.mu; the returned slice is valid until the next read.
//
//genie:hotpath
func (c *Client) roundTrip(b []byte, data []byte) ([]byte, error) {
	if c.broken {
		return nil, errClientBroken
	}
	c.armDeadline()
	if err := c.sendLine(b, data); err != nil {
		return nil, c.fail(err)
	}
	line, err := c.readLine()
	if err != nil {
		return nil, c.fail(err)
	}
	return line, nil
}

// fetch runs get/gets and parses VALUE blocks. It takes c.mu itself —
// callers must NOT hold it.
func (c *Client) fetch(withCas bool, key string) (val []byte, cas uint64, found bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, 0, false, errClientBroken
	}
	c.armDeadline()
	b := c.cmd()
	if withCas {
		b = append(b, "gets "...)
	} else {
		b = append(b, "get "...)
	}
	b = append(b, key...)
	if err := c.sendLine(b, nil); err != nil {
		return nil, 0, false, c.fail(err)
	}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, 0, false, c.fail(err)
		}
		if string(line) == "END" {
			return val, cas, found, nil
		}
		fields := splitFields(line, c.fields[:0])
		c.fields = fields[:0]
		if len(fields) < 4 || string(fields[0]) != "VALUE" {
			return nil, 0, false, c.fail(fmt.Errorf("cacheproto: bad response line %q", line))
		}
		n, ok := atoi(fields[3])
		if !ok || n < 0 {
			return nil, 0, false, c.fail(fmt.Errorf("cacheproto: bad length in %q", line))
		}
		if len(fields) >= 5 {
			cas, ok = atou(fields[4])
			if !ok {
				return nil, 0, false, c.fail(fmt.Errorf("cacheproto: bad cas in %q", line))
			}
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, 0, false, c.fail(err)
		}
		val = buf[:n]
		found = true
	}
}

// Get implements kvcache.Cache. Network errors surface as misses; callers
// fall back to the database, which is the correct degraded behaviour.
func (c *Client) Get(key string) ([]byte, bool) {
	v, _, ok, err := c.fetch(false, key)
	if err != nil {
		return nil, false
	}
	return v, ok
}

// Gets implements kvcache.Cache.
func (c *Client) Gets(key string) ([]byte, uint64, bool) {
	v, cas, ok, err := c.fetch(true, key)
	if err != nil {
		return nil, 0, false
	}
	return v, cas, ok
}

// appendStoreCmd builds "<verb> <key> 0 <exptime> <bytes>[ <cas>]".
//
//genie:hotpath
func (c *Client) appendStoreCmd(b []byte, verb, key string, ttl time.Duration, size int) []byte {
	b = append(b, verb...)
	b = append(b, ' ')
	b = append(b, key...)
	b = append(b, " 0 "...)
	b = strconv.AppendInt(b, ttlSeconds(ttl), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(size), 10)
	return b
}

// set is Set with the connection error exposed (for the Pool).
//
//genie:hotpath
func (c *Client) set(key string, value []byte, ttl time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(c.appendStoreCmd(c.cmd(), "set", key, ttl, len(value)), value)
	return err
}

// Set implements kvcache.Cache.
func (c *Client) Set(key string, value []byte, ttl time.Duration) {
	_ = c.set(key, value, ttl)
}

// add is Add with the connection error exposed (for the Pool).
//
//genie:hotpath
func (c *Client) add(key string, value []byte, ttl time.Duration) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := c.roundTrip(c.appendStoreCmd(c.cmd(), "add", key, ttl, len(value)), value)
	return err == nil && string(line) == "STORED", err
}

// Add implements kvcache.Cache.
func (c *Client) Add(key string, value []byte, ttl time.Duration) bool {
	ok, _ := c.add(key, value, ttl)
	return ok
}

// cas is Cas with the connection error exposed (for the Pool).
func (c *Client) cas(key string, value []byte, ttl time.Duration, cas uint64) (kvcache.CasResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.appendStoreCmd(c.cmd(), "cas", key, ttl, len(value))
	b = append(b, ' ')
	b = strconv.AppendUint(b, cas, 10)
	line, err := c.roundTrip(b, value)
	if err != nil {
		return kvcache.CasNotFound, err
	}
	switch string(line) {
	case "STORED":
		return kvcache.CasStored, nil
	case "EXISTS":
		return kvcache.CasConflict, nil
	default:
		return kvcache.CasNotFound, nil
	}
}

// Cas implements kvcache.Cache.
func (c *Client) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	r, _ := c.cas(key, value, ttl, cas)
	return r
}

// del is Delete with the connection error exposed (for the Pool).
//
//genie:hotpath
func (c *Client) del(key string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := append(c.cmd(), "delete "...)
	b = append(b, key...)
	line, err := c.roundTrip(b, nil)
	return err == nil && string(line) == "DELETED", err
}

// Delete implements kvcache.Cache.
func (c *Client) Delete(key string) bool {
	ok, _ := c.del(key)
	return ok
}

// incr is Incr with the connection error exposed (for the Pool).
//
//genie:hotpath
func (c *Client) incr(key string, delta int64) (int64, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := append(c.cmd(), "incr "...)
	b = append(b, key...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, delta, 10)
	line, err := c.roundTrip(b, nil)
	if err != nil {
		return 0, false, err
	}
	if string(line) == "NOT_FOUND" || bytes.HasPrefix(line, clientErrorPrefix) {
		return 0, false, nil
	}
	n, ok := atoi(line)
	if !ok {
		return 0, false, nil
	}
	return n, true, nil
}

// Incr implements kvcache.Cache.
func (c *Client) Incr(key string, delta int64) (int64, bool) {
	n, ok, _ := c.incr(key, delta)
	return n, ok
}

// flushAll is FlushAll with the connection error exposed (for the Pool).
func (c *Client) flushAll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(append(c.cmd(), "flush_all"...), nil)
	return err
}

// FlushAll implements kvcache.Cache.
func (c *Client) FlushAll() {
	_ = c.flushAll()
}

var _ kvcache.BatchApplier = (*Client)(nil)

// ApplyBatch implements kvcache.BatchApplier over the pipelined mop command:
// every op in the batch is written in one flush and all results are read
// back together, so the batch costs a single network round trip instead of
// one per op. Network errors surface as zero-valued results (not-found /
// not-stored), mirroring the per-op methods' degraded behaviour.
func (c *Client) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	out, _ := c.applyBatch(ops)
	return out
}

// applyBatch is ApplyBatch with the connection error exposed, so the Pool
// can discard a conn whose mop exchange broke mid-stream.
//
// Ops the server is guaranteed to refuse (a value over its size cap) are
// skipped client-side — their result stays zero-valued — instead of being
// pipelined: the server answers an oversized set by aborting the whole
// batch, which would throw away every other op flushed with it (an
// invalidation bus batch coalesces unrelated deletes into the same mop; one
// bad set must not cancel those).
func (c *Client) applyBatch(ops []kvcache.BatchOp) ([]kvcache.BatchResult, error) {
	out := make([]kvcache.BatchResult, len(ops))
	if len(ops) == 0 {
		return out, nil
	}
	send := make([]int, 0, len(ops)) // indices of ops actually pipelined
	for i, op := range ops {
		if !validKey(op.Key) {
			continue
		}
		if (op.Kind == kvcache.BatchSet || op.Kind == kvcache.BatchAdd) && len(op.Value) > maxValueBytes {
			continue
		}
		send = append(send, i)
	}
	if len(send) == 0 {
		return out, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return out, errClientBroken
	}
	c.armDeadline()
	b := append(c.cmd(), "mop "...)
	b = strconv.AppendInt(b, int64(len(send)), 10)
	b = append(b, '\r', '\n')
	c.w.Write(b)
	for _, i := range send {
		op := &ops[i]
		b = c.wbuf[:0]
		switch op.Kind {
		case kvcache.BatchSet, kvcache.BatchAdd:
			verb := "set"
			if op.Kind == kvcache.BatchAdd {
				verb = "add"
			}
			b = c.appendStoreCmd(b, verb, op.Key, op.TTL, len(op.Value))
			b = append(b, '\r', '\n')
			c.w.Write(b)
			c.w.Write(op.Value)
			c.w.WriteString("\r\n")
		case kvcache.BatchIncr:
			b = append(b, "incr "...)
			b = append(b, op.Key...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, op.Delta, 10)
			b = append(b, '\r', '\n')
			c.w.Write(b)
		default:
			b = append(b, "delete "...)
			b = append(b, op.Key...)
			b = append(b, '\r', '\n')
			c.w.Write(b)
		}
		c.wbuf = b
	}
	if err := c.w.Flush(); err != nil {
		return out, c.fail(err)
	}
	for n, i := range send {
		line, err := c.readLine()
		if err != nil {
			return out, c.fail(err)
		}
		if isErrorLine(line) {
			// The server aborted the batch: it sent this error line instead
			// of the remaining results and the trailing END, so the stream is
			// unframed from here. Surface an error so the Pool discards the
			// connection rather than parsing the error as an op result (a
			// delete would read it as not-found) and then hanging on END.
			return out, c.fail(fmt.Errorf("cacheproto: mop aborted at op %d: %s", n, line))
		}
		switch ops[i].Kind {
		case kvcache.BatchSet, kvcache.BatchAdd:
			out[i] = kvcache.BatchResult{Found: string(line) == "STORED"}
		case kvcache.BatchIncr:
			if n, ok := atoi(line); ok {
				out[i] = kvcache.BatchResult{Found: true, Value: n}
			}
		default:
			out[i] = kvcache.BatchResult{Found: string(line) == "DELETED"}
		}
	}
	// Trailing END frames the batch response.
	line, err := c.readLine()
	if err != nil {
		return out, c.fail(err)
	}
	if string(line) != "END" {
		return out, c.fail(fmt.Errorf("cacheproto: mop response unframed: %q", line))
	}
	return out, nil
}

// Error-reply prefixes, hoisted so response classification on the hot path
// never re-materializes them as fresh slices.
var (
	clientErrorPrefix = []byte("CLIENT_ERROR")
	serverErrorPrefix = []byte("SERVER_ERROR")
)

// isErrorLine reports whether a response line is one of the protocol's error
// replies (memcached's ERROR / CLIENT_ERROR msg / SERVER_ERROR msg), which
// can replace a result line mid-batch when the server aborts.
//
//genie:hotpath
func isErrorLine(line []byte) bool {
	return string(line) == "ERROR" ||
		bytes.HasPrefix(line, clientErrorPrefix) ||
		bytes.HasPrefix(line, serverErrorPrefix)
}

// maxKeyBytes is memcached's classic key-length bound.
const maxKeyBytes = 250

// validKey reports whether key is expressible in the text protocol:
// non-empty, bounded, and free of whitespace and control characters
// (memcached's key rules). A key that fails this would split into extra
// protocol fields on the wire and make the server abort the exchange.
func validKey(key string) bool {
	if key == "" || len(key) > maxKeyBytes {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return false
		}
	}
	return true
}

// Keys fetches the server's live key list (the keys command). The cluster
// membership-change handoff uses it to find the remapped key share on a
// prior owner; like that pass itself it is O(keys) and not a hot-path call.
func (c *Client) Keys() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, errClientBroken
	}
	c.armDeadline()
	if err := c.sendLine(append(c.cmd(), "keys"...), nil); err != nil {
		return nil, c.fail(err)
	}
	var out []string
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, c.fail(err)
		}
		if string(line) == "END" {
			return out, nil
		}
		if len(line) < 5 || string(line[:4]) != "KEY " {
			return nil, c.fail(errors.New("cacheproto: bad keys line " + string(line)))
		}
		out = append(out, string(line[4:]))
	}
}

// ServerStats fetches the server's counters.
func (c *Client) ServerStats() (map[string]int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return nil, errClientBroken
	}
	c.armDeadline()
	if err := c.sendLine(append(c.cmd(), "stats"...), nil); err != nil {
		return nil, c.fail(err)
	}
	out := map[string]int64{}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, c.fail(err)
		}
		if string(line) == "END" {
			return out, nil
		}
		fields := splitFields(line, c.fields[:0])
		c.fields = fields[:0]
		if len(fields) != 3 || string(fields[0]) != "STAT" {
			return nil, c.fail(errors.New("cacheproto: bad stats line " + string(line)))
		}
		n, ok := atoi(fields[2])
		if !ok {
			return nil, c.fail(fmt.Errorf("cacheproto: bad stats value %q", line))
		}
		out[string(fields[1])] = n
	}
}
