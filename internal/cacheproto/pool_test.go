package cacheproto

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

func newPoolPair(t *testing.T, maxIdle int) (*kvcache.Store, *Pool) {
	t.Helper()
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	pool := NewPool(addr, maxIdle)
	t.Cleanup(func() { _ = pool.Close() })
	return store, pool
}

func TestPoolRoundTripAllOps(t *testing.T) {
	store, pool := newPoolPair(t, 2)
	pool.Set("k", []byte("v1"), 0)
	if v, ok := pool.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if pool.Add("k", []byte("nope"), 0) {
		t.Fatal("Add over existing key succeeded")
	}
	v, tok, ok := pool.Gets("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Gets = %q, %v", v, ok)
	}
	if r := pool.Cas("k", []byte("v2"), 0, tok); r != kvcache.CasStored {
		t.Fatalf("Cas = %v", r)
	}
	pool.Set("n", []byte("10"), 0)
	if n, ok := pool.Incr("n", 7); !ok || n != 17 {
		t.Fatalf("Incr = %d, %v", n, ok)
	}
	if !pool.Delete("n") {
		t.Fatal("Delete = false")
	}
	pool.FlushAll()
	if store.Len() != 0 {
		t.Fatalf("store has %d items after FlushAll", store.Len())
	}
	if _, err := pool.ServerStats(); err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
}

func TestPoolReusesConnections(t *testing.T) {
	_, pool := newPoolPair(t, 4)
	for i := 0; i < 50; i++ {
		pool.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	st := pool.Stats()
	// Sequential ops: the first checkout dials, every later one reuses.
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (stats %+v)", st.Dials, st)
	}
	if st.Reuses < 40 {
		t.Fatalf("reuses = %d, want >= 40", st.Reuses)
	}
	if st.Idle != 1 {
		t.Fatalf("idle = %d, want 1", st.Idle)
	}
}

func TestPoolBoundsIdleConns(t *testing.T) {
	_, pool := newPoolPair(t, 2)
	// 8 concurrent batches force up to 8 simultaneous checkouts; on return
	// only maxIdle park.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				pool.Set(k, []byte("v"), 0)
				if v, ok := pool.Get(k); !ok || string(v) != "v" {
					t.Errorf("round trip %s failed: %q %v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	if st.Idle > 2 {
		t.Fatalf("idle = %d, want <= 2 (stats %+v)", st.Idle, st)
	}
	if st.Dials < 1 || st.Discards != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestPoolApplyBatchPipelined(t *testing.T) {
	store, pool := newPoolPair(t, 2)
	store.Set("old", []byte("x"), 0)
	store.Set("ctr", []byte("9"), 0)
	ops := []kvcache.BatchOp{
		{Kind: kvcache.BatchSet, Key: "a", Value: []byte("va")},
		{Kind: kvcache.BatchIncr, Key: "ctr", Delta: 1},
		{Kind: kvcache.BatchDelete, Key: "old"},
	}
	res := pool.ApplyBatch(ops)
	if !res[0].Found || !res[1].Found || res[1].Value != 10 || !res[2].Found {
		t.Fatalf("batch results = %+v", res)
	}
	// The connection stays framed and parks for reuse.
	if v, ok := pool.Get("a"); !ok || string(v) != "va" {
		t.Fatalf("Get after batch = %q, %v", v, ok)
	}
	if st := pool.Stats(); st.Dials != 1 {
		t.Fatalf("dials = %d, want 1", st.Dials)
	}
	if res := pool.ApplyBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

func TestPoolDiscardsBrokenConns(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(addr, 4)
	defer pool.Close()
	pool.Set("k", []byte("v"), 0)
	// Kill the server: the parked conn is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pool.Get("k"); ok {
		t.Fatal("Get succeeded against a dead server")
	}
	st := pool.Stats()
	if st.Discards == 0 {
		t.Fatalf("dead conn not discarded: %+v", st)
	}
	if st.Idle != 0 {
		t.Fatalf("dead conn parked: %+v", st)
	}

	// A replacement server on the same address heals the pool: fresh dials,
	// no poisoned state left over.
	store2 := kvcache.New(0)
	srv2 := NewServer(store2)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	pool.Set("k2", []byte("v2"), 0)
	if v, ok := pool.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("pool did not recover: %q, %v", v, ok)
	}
}

func TestPoolCloseDegradesToMisses(t *testing.T) {
	_, pool := newPoolPair(t, 2)
	pool.Set("k", []byte("v"), 0)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pool.Get("k"); ok {
		t.Fatal("Get succeeded on a closed pool")
	}
	pool.Set("k2", []byte("v"), 0) // must not panic
	if res := pool.ApplyBatch([]kvcache.BatchOp{{Kind: kvcache.BatchDelete, Key: "k"}}); res[0].Found {
		t.Fatal("batch op reported success on a closed pool")
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestPoolConcurrentMixedOps(t *testing.T) {
	store, pool := newPoolPair(t, 4)
	store.Set("ctr", []byte("0"), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch i % 4 {
				case 0:
					pool.Set(fmt.Sprintf("g%d-%d", g, i), []byte("v"), 0)
				case 1:
					pool.Get(fmt.Sprintf("g%d-%d", g, i-1))
				case 2:
					pool.Incr("ctr", 1)
				default:
					pool.ApplyBatch([]kvcache.BatchOp{
						{Kind: kvcache.BatchSet, Key: fmt.Sprintf("b%d-%d", g, i), Value: []byte("bv")},
						{Kind: kvcache.BatchDelete, Key: fmt.Sprintf("g%d-%d", g, i-3)},
					})
				}
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine hits the incr arm for i = 2, 6, ..., 26: 7 times.
	if n, ok := store.Get("ctr"); !ok || string(n) != "56" {
		t.Fatalf("ctr = %s, %v, want 56 (8 goroutines x 7 incrs)", n, ok)
	}
	if st := pool.Stats(); st.Discards != 0 {
		t.Fatalf("healthy run discarded conns: %+v", st)
	}
}

// waitForState polls until the pool reaches want or the deadline passes.
func waitForState(t *testing.T, pool *Pool, want BreakerState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pool.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("pool state = %v after 5s, want %v (stats %+v)", pool.State(), want, pool.Stats())
}

func TestPoolBreakerLifecycle(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPoolWithConfig(PoolConfig{
		Addr: addr, MaxIdle: 2, FailThreshold: 3, ProbeInterval: 5 * time.Millisecond,
	})
	defer pool.Close()

	pool.Set("k", []byte("v"), 0)
	if got := pool.State(); got != BreakerClosed {
		t.Fatalf("healthy pool state = %v", got)
	}

	// Kill the node: the parked conn fails once, then fresh dials fail until
	// the threshold trips the breaker.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := pool.Get("k"); ok {
			t.Fatal("Get succeeded against a dead server")
		}
	}
	if got := pool.State(); got != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open (stats %+v)", 3, got, pool.Stats())
	}
	st := pool.Stats()
	if st.Trips != 1 {
		t.Fatalf("trips = %d, want 1", st.Trips)
	}

	// Open breaker: ops fail fast with zero dials.
	dialsBefore := st.Dials
	for i := 0; i < 50; i++ {
		if _, ok := pool.Get("k"); ok {
			t.Fatal("fail-fast Get returned a hit")
		}
	}
	st = pool.Stats()
	if st.Dials != dialsBefore {
		t.Fatalf("open breaker dialed: %d -> %d", dialsBefore, st.Dials)
	}
	if st.FailFast < 50 {
		t.Fatalf("failFast = %d, want >= 50", st.FailFast)
	}

	// While the node stays dead the probe keeps trying and the breaker stays
	// open (passing through half-open during each attempt).
	deadline := time.Now().Add(2 * time.Second)
	for pool.Stats().Probes == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if pool.Stats().Probes == 0 {
		t.Fatal("no probe attempted while open")
	}
	if got := pool.State(); got == BreakerClosed {
		t.Fatalf("breaker closed against a dead node")
	}

	// Revive the node on the same address: the probe closes the breaker and
	// operations flow again.
	store2 := kvcache.New(0)
	srv2 := NewServer(store2)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	waitForState(t, pool, BreakerClosed)
	pool.Set("k2", []byte("v2"), 0)
	if v, ok := pool.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("pool did not recover: %q, %v", v, ok)
	}
}

func TestPoolBreakerDisabled(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPoolWithConfig(PoolConfig{Addr: addr, MaxIdle: 2, DisableBreaker: true})
	defer pool.Close()
	pool.Set("k", []byte("v"), 0)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Every op keeps attempting a dial; the breaker never trips. The first
	// Get burns the parked conn; the other 9 each pay a failed dial.
	for i := 0; i < 10; i++ {
		if _, ok := pool.Get("k"); ok {
			t.Fatal("Get succeeded against a dead server")
		}
	}
	st := pool.Stats()
	if st.Trips != 0 || st.State != BreakerClosed {
		t.Fatalf("disabled breaker tripped: %+v", st)
	}
	if st.DialFails < 9 {
		t.Fatalf("dialFails = %d, want >= 9 — the disabled breaker must keep paying the dial storm", st.DialFails)
	}
	if st.FailFast != 0 {
		t.Fatalf("failFast = %d with breaker disabled", st.FailFast)
	}
}

func TestPoolSuccessResetsFailureCount(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := NewPoolWithConfig(PoolConfig{Addr: addr, MaxIdle: 2, FailThreshold: 3})
	defer pool.Close()
	// Alternate one failure with one success: the consecutive count resets
	// each round and the breaker must never trip, even though total
	// failures exceed the threshold. Failures are injected by hand through
	// put(c, err) — the exact path every broken operation takes.
	for round := 0; round < 5; round++ {
		c, err := pool.get()
		if err != nil {
			t.Fatal(err)
		}
		pool.put(c, fmt.Errorf("injected op failure"))
		pool.Set("ok", []byte("v"), 0)
	}
	if st := pool.Stats(); st.Trips != 0 || st.State != BreakerClosed {
		t.Fatalf("breaker tripped without consecutive failures: %+v", st)
	}
}

func TestPoolCapsTotalConnections(t *testing.T) {
	_, pool := newPoolPairCfg(t, PoolConfig{MaxIdle: 2, MaxConns: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				pool.Set(k, []byte("v"), 0)
				if v, ok := pool.Get(k); !ok || string(v) != "v" {
					t.Errorf("round trip %s failed: %q %v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	if st.Conns > 2 {
		t.Fatalf("conns = %d, want <= 2 (stats %+v)", st.Conns, st)
	}
	// A healthy run never discards, so connections live forever: at most
	// MaxConns dials can ever have happened.
	if st.Dials > 2 {
		t.Fatalf("dials = %d, want <= 2 — the cap did not stop burst dialing (stats %+v)", st.Dials, st)
	}
	if st.Waits == 0 {
		t.Fatalf("8 goroutines over a 2-conn cap never waited: %+v", st)
	}
	if st.Discards != 0 {
		t.Fatalf("healthy run discarded conns: %+v", st)
	}
}

// newPoolPairCfg is newPoolPair with explicit pool configuration.
func newPoolPairCfg(t *testing.T, cfg PoolConfig) (*kvcache.Store, *Pool) {
	t.Helper()
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cfg.Addr = addr
	pool := NewPoolWithConfig(cfg)
	t.Cleanup(func() { _ = pool.Close() })
	return store, pool
}

func TestPoolCloseUnblocksWaiters(t *testing.T) {
	_, pool := newPoolPairCfg(t, PoolConfig{MaxIdle: 1, MaxConns: 1})
	// Hold the only connection via a checked-out client.
	c, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		pool.Get("k") // blocks on the cap
	}()
	time.Sleep(10 * time.Millisecond)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not released by Close")
	}
	pool.put(c, nil) // returning after close must not panic
}
