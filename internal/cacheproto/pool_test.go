package cacheproto

import (
	"fmt"
	"sync"
	"testing"

	"cachegenie/internal/kvcache"
)

func newPoolPair(t *testing.T, maxIdle int) (*kvcache.Store, *Pool) {
	t.Helper()
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	pool := NewPool(addr, maxIdle)
	t.Cleanup(func() { _ = pool.Close() })
	return store, pool
}

func TestPoolRoundTripAllOps(t *testing.T) {
	store, pool := newPoolPair(t, 2)
	pool.Set("k", []byte("v1"), 0)
	if v, ok := pool.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if pool.Add("k", []byte("nope"), 0) {
		t.Fatal("Add over existing key succeeded")
	}
	v, tok, ok := pool.Gets("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Gets = %q, %v", v, ok)
	}
	if r := pool.Cas("k", []byte("v2"), 0, tok); r != kvcache.CasStored {
		t.Fatalf("Cas = %v", r)
	}
	pool.Set("n", []byte("10"), 0)
	if n, ok := pool.Incr("n", 7); !ok || n != 17 {
		t.Fatalf("Incr = %d, %v", n, ok)
	}
	if !pool.Delete("n") {
		t.Fatal("Delete = false")
	}
	pool.FlushAll()
	if store.Len() != 0 {
		t.Fatalf("store has %d items after FlushAll", store.Len())
	}
	if _, err := pool.ServerStats(); err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
}

func TestPoolReusesConnections(t *testing.T) {
	_, pool := newPoolPair(t, 4)
	for i := 0; i < 50; i++ {
		pool.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	st := pool.Stats()
	// Sequential ops: the first checkout dials, every later one reuses.
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (stats %+v)", st.Dials, st)
	}
	if st.Reuses < 40 {
		t.Fatalf("reuses = %d, want >= 40", st.Reuses)
	}
	if st.Idle != 1 {
		t.Fatalf("idle = %d, want 1", st.Idle)
	}
}

func TestPoolBoundsIdleConns(t *testing.T) {
	_, pool := newPoolPair(t, 2)
	// 8 concurrent batches force up to 8 simultaneous checkouts; on return
	// only maxIdle park.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				pool.Set(k, []byte("v"), 0)
				if v, ok := pool.Get(k); !ok || string(v) != "v" {
					t.Errorf("round trip %s failed: %q %v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	if st.Idle > 2 {
		t.Fatalf("idle = %d, want <= 2 (stats %+v)", st.Idle, st)
	}
	if st.Dials < 1 || st.Discards != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestPoolApplyBatchPipelined(t *testing.T) {
	store, pool := newPoolPair(t, 2)
	store.Set("old", []byte("x"), 0)
	store.Set("ctr", []byte("9"), 0)
	ops := []kvcache.BatchOp{
		{Kind: kvcache.BatchSet, Key: "a", Value: []byte("va")},
		{Kind: kvcache.BatchIncr, Key: "ctr", Delta: 1},
		{Kind: kvcache.BatchDelete, Key: "old"},
	}
	res := pool.ApplyBatch(ops)
	if !res[0].Found || !res[1].Found || res[1].Value != 10 || !res[2].Found {
		t.Fatalf("batch results = %+v", res)
	}
	// The connection stays framed and parks for reuse.
	if v, ok := pool.Get("a"); !ok || string(v) != "va" {
		t.Fatalf("Get after batch = %q, %v", v, ok)
	}
	if st := pool.Stats(); st.Dials != 1 {
		t.Fatalf("dials = %d, want 1", st.Dials)
	}
	if res := pool.ApplyBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

func TestPoolDiscardsBrokenConns(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(addr, 4)
	defer pool.Close()
	pool.Set("k", []byte("v"), 0)
	// Kill the server: the parked conn is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pool.Get("k"); ok {
		t.Fatal("Get succeeded against a dead server")
	}
	st := pool.Stats()
	if st.Discards == 0 {
		t.Fatalf("dead conn not discarded: %+v", st)
	}
	if st.Idle != 0 {
		t.Fatalf("dead conn parked: %+v", st)
	}

	// A replacement server on the same address heals the pool: fresh dials,
	// no poisoned state left over.
	store2 := kvcache.New(0)
	srv2 := NewServer(store2)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	pool.Set("k2", []byte("v2"), 0)
	if v, ok := pool.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("pool did not recover: %q, %v", v, ok)
	}
}

func TestPoolCloseDegradesToMisses(t *testing.T) {
	_, pool := newPoolPair(t, 2)
	pool.Set("k", []byte("v"), 0)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := pool.Get("k"); ok {
		t.Fatal("Get succeeded on a closed pool")
	}
	pool.Set("k2", []byte("v"), 0) // must not panic
	if res := pool.ApplyBatch([]kvcache.BatchOp{{Kind: kvcache.BatchDelete, Key: "k"}}); res[0].Found {
		t.Fatal("batch op reported success on a closed pool")
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestPoolConcurrentMixedOps(t *testing.T) {
	store, pool := newPoolPair(t, 4)
	store.Set("ctr", []byte("0"), 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch i % 4 {
				case 0:
					pool.Set(fmt.Sprintf("g%d-%d", g, i), []byte("v"), 0)
				case 1:
					pool.Get(fmt.Sprintf("g%d-%d", g, i-1))
				case 2:
					pool.Incr("ctr", 1)
				default:
					pool.ApplyBatch([]kvcache.BatchOp{
						{Kind: kvcache.BatchSet, Key: fmt.Sprintf("b%d-%d", g, i), Value: []byte("bv")},
						{Kind: kvcache.BatchDelete, Key: fmt.Sprintf("g%d-%d", g, i-3)},
					})
				}
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine hits the incr arm for i = 2, 6, ..., 26: 7 times.
	if n, ok := store.Get("ctr"); !ok || string(n) != "56" {
		t.Fatalf("ctr = %s, %v, want 56 (8 goroutines x 7 incrs)", n, ok)
	}
	if st := pool.Stats(); st.Discards != 0 {
		t.Fatalf("healthy run discarded conns: %+v", st)
	}
}
