package cacheproto

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

// rawServer starts a server and returns its address plus a dialer for raw
// protocol conversations.
func rawServer(t *testing.T) (string, *kvcache.Store) {
	t.Helper()
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, store
}

func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn, bufio.NewReader(conn)
}

// TestServerMalformedInput feeds the server protocol garbage and verifies
// each case errors without killing the connection's framing (where
// recoverable) or the accept loop (always): after every case a fresh,
// well-formed client still gets service.
func TestServerMalformedInput(t *testing.T) {
	addr, _ := rawServer(t)
	cases := []struct {
		name string
		send string
		// wantPrefix is matched against the first response line. Empty
		// means the server may simply drop the connection (e.g. a
		// truncated stream has no recoverable framing).
		wantPrefix string
		// followUp, when set, is sent on the same connection after the bad
		// command to prove the stream stayed framed.
		followUp       string
		wantFollowUpOK bool
	}{
		{
			name:       "bad opcode",
			send:       "frobnicate key\r\n",
			wantPrefix: "CLIENT_ERROR",
			followUp:   "set ok1 0 0 2\r\nhi\r\n", wantFollowUpOK: true,
		},
		{
			name:       "oversized value",
			send:       fmt.Sprintf("set big 0 0 %d\r\n%s\r\n", maxValueBytes+1, strings.Repeat("x", maxValueBytes+1)),
			wantPrefix: "CLIENT_ERROR",
			followUp:   "set ok2 0 0 2\r\nhi\r\n", wantFollowUpOK: true,
		},
		{
			name:       "non-numeric byte count",
			send:       "set k 0 0 banana\r\n",
			wantPrefix: "CLIENT_ERROR",
		},
		{
			name:       "negative byte count",
			send:       "set k 0 0 -5\r\n",
			wantPrefix: "CLIENT_ERROR",
		},
		{
			name:       "missing fields",
			send:       "set k\r\n",
			wantPrefix: "CLIENT_ERROR",
		},
		{
			name:       "bad mop count",
			send:       "mop banana\r\n",
			wantPrefix: "CLIENT_ERROR",
		},
		{
			name:       "absurd mop count",
			send:       fmt.Sprintf("mop %d\r\n", maxMopOps+1),
			wantPrefix: "CLIENT_ERROR",
		},
		{
			name:       "forbidden command inside mop",
			send:       "mop 1\r\nflush_all\r\n",
			wantPrefix: "CLIENT_ERROR",
		},
		{
			name: "truncated mop frame",
			// Announces 3 sub-commands, sends 1, then the stream ends. The
			// server can only give up on this connection.
			send: "mop 3\r\ndelete k\r\n",
		},
		{
			name: "truncated set data",
			send: "set k 0 0 100\r\nonly-ten-b",
		},
		{
			name:       "bad data terminator",
			send:       "set k 0 0 2\r\nhiXX",
			wantPrefix: "CLIENT_ERROR",
		},
		{
			// The refusal must come AFTER the announced data block is
			// consumed; an early return would leave the payload in the
			// stream to run as top-level commands (a payload of
			// "flush_all\r\n" would wipe the store).
			name:       "bad cas id keeps framing",
			send:       "cas k 0 0 11 notanumber\r\nflush_all\r\n\r\n",
			wantPrefix: "CLIENT_ERROR",
			followUp:   "set ok3 0 0 2\r\nhi\r\n", wantFollowUpOK: true,
		},
		{
			name:       "wrapping byte count",
			send:       "set k 0 0 18446744073709551616\r\n",
			wantPrefix: "CLIENT_ERROR",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, r := rawDial(t, addr)
			if _, err := conn.Write([]byte(tc.send)); err != nil {
				t.Fatalf("write: %v", err)
			}
			if tc.wantPrefix != "" {
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("no response to %q: %v", tc.send, err)
				}
				if !strings.HasPrefix(line, tc.wantPrefix) {
					t.Fatalf("response %q, want prefix %q", line, tc.wantPrefix)
				}
			} else {
				// Half-close our side so the server's pending read sees EOF
				// rather than a stalled stream.
				if tcp, ok := conn.(*net.TCPConn); ok {
					_ = tcp.CloseWrite()
				}
				_, _ = r.ReadString('\n') // EOF or garbage; either is fine
			}
			if tc.followUp != "" {
				if _, err := conn.Write([]byte(tc.followUp)); err != nil {
					t.Fatalf("follow-up write: %v", err)
				}
				line, err := r.ReadString('\n')
				if err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
					if tc.wantFollowUpOK {
						t.Fatalf("connection lost framing: %q, %v", line, err)
					}
				}
			}
			// The accept loop must have survived: a fresh well-formed
			// client still gets full service.
			cli, err := Dial(addr)
			if err != nil {
				t.Fatalf("server stopped accepting after %q: %v", tc.name, err)
			}
			defer cli.Close()
			cli.Set("probe", []byte("alive"), 0)
			if v, ok := cli.Get("probe"); !ok || string(v) != "alive" {
				t.Fatalf("server unhealthy after %q: %q, %v", tc.name, v, ok)
			}
		})
	}
}

// TestServerOversizedValueKeepsFraming pins the drain behaviour down: the
// refused value must not be stored, and the same connection keeps working.
func TestServerOversizedValueKeepsFraming(t *testing.T) {
	addr, store := rawServer(t)
	conn, r := rawDial(t, addr)
	big := strings.Repeat("v", maxValueBytes+1)
	fmt.Fprintf(conn, "set big 0 0 %d\r\n%s\r\n", len(big), big)
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "CLIENT_ERROR") {
		t.Fatalf("oversized set: %q, %v", line, err)
	}
	if _, ok := store.Get("big"); ok {
		t.Fatal("oversized value was stored")
	}
	fmt.Fprintf(conn, "set small 0 0 5\r\nhello\r\n")
	line, err = r.ReadString('\n')
	if err != nil || strings.TrimRight(line, "\r\n") != "STORED" {
		t.Fatalf("framing lost after oversized refusal: %q, %v", line, err)
	}
	if v, ok := store.Get("small"); !ok || string(v) != "hello" {
		t.Fatalf("small = %q, %v", v, ok)
	}
}

// TestServerConcurrentClientStress hammers one server from many concurrent
// connections mixing well-formed traffic with protocol garbage; the server
// must neither wedge nor lose well-formed operations.
func TestServerConcurrentClientStress(t *testing.T) {
	addr, store := rawServer(t)
	const goroutines = 12
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%4 == 3 {
				// Saboteur: raw garbage connections.
				for i := 0; i < iters/10; i++ {
					conn, err := net.Dial("tcp", addr)
					if err != nil {
						t.Errorf("saboteur dial: %v", err)
						return
					}
					fmt.Fprintf(conn, "mop 99\r\ndelete x\r\n")
					_ = conn.Close()
				}
				return
			}
			cli, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cli.Close()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				cli.Set(k, []byte("v"), 0)
				if _, ok := cli.Get(k); !ok {
					t.Errorf("lost %s", k)
					return
				}
				cli.ApplyBatch([]kvcache.BatchOp{
					{Kind: kvcache.BatchIncr, Key: "missing", Delta: 1},
					{Kind: kvcache.BatchDelete, Key: k},
				})
			}
		}(g)
	}
	wg.Wait()
	// 9 well-behaved goroutines each set+deleted their keys.
	if store.Len() != 0 {
		t.Fatalf("store has %d leftover items", store.Len())
	}
	// Server is still fully serviceable.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Set("final", []byte("ok"), 0)
	if v, ok := cli.Get("final"); !ok || string(v) != "ok" {
		t.Fatalf("final probe = %q, %v", v, ok)
	}
}

// scriptedServer accepts connections, consumes whatever the client writes,
// and answers each connection with the fixed canned response — a stand-in
// for a buggy, hostile, or version-skewed server whose responses our own
// Server would never produce (the client pre-filters the ops that would
// make the real server abort).
func scriptedServer(t *testing.T, response string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 1<<16)
				if _, err := conn.Read(buf); err != nil {
					return
				}
				_, _ = conn.Write([]byte(response))
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestClientApplyBatchMidBatchError proves a mop batch the server aborts
// mid-stream surfaces as a connection error instead of being misparsed: the
// scripted server answers op 2 with CLIENT_ERROR in place of its result
// line and the trailing END, so treating that line as an ordinary result
// would corrupt every later op and then hang on the missing END.
func TestClientApplyBatchMidBatchError(t *testing.T) {
	addr := scriptedServer(t, "STORED\r\nCLIENT_ERROR boom\r\n")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	ops := []kvcache.BatchOp{
		{Kind: kvcache.BatchSet, Key: "ok", Value: []byte("fine")},
		{Kind: kvcache.BatchDelete, Key: "victim"},
		{Kind: kvcache.BatchDelete, Key: "other"},
	}
	res, err := c.applyBatch(ops)
	if err == nil {
		t.Fatalf("mid-batch CLIENT_ERROR not surfaced; results = %+v", res)
	}
	if !strings.Contains(err.Error(), "CLIENT_ERROR") {
		t.Fatalf("error does not carry the server line: %v", err)
	}
	// Results before the abort parsed; from the abort on they stay zero.
	if !res[0].Found || res[1].Found || res[2].Found {
		t.Fatalf("results around the abort: %+v", res)
	}
}

// TestPoolDiscardsConnAfterMopAbort is the pool-level half of the same bug:
// the broken connection must be discarded, not parked.
func TestPoolDiscardsConnAfterMopAbort(t *testing.T) {
	addr := scriptedServer(t, "SERVER_ERROR out of memory\r\n")
	pool := NewPool(addr, 2)
	defer pool.Close()

	res := pool.ApplyBatch([]kvcache.BatchOp{
		{Kind: kvcache.BatchDelete, Key: "a"},
		{Kind: kvcache.BatchSet, Key: "b", Value: []byte("2")},
	})
	if res[0].Found || res[1].Found {
		t.Fatalf("aborted batch reported success: %+v", res)
	}
	st := pool.Stats()
	if st.Discards != 1 {
		t.Fatalf("broken conn not discarded: %+v", st)
	}
	if st.Idle != 0 {
		t.Fatalf("broken conn parked: %+v", st)
	}
}

// TestServerNegativeExptime checks the memcached semantics of exptime signs:
// negative means already expired (stored but never retrievable), zero means
// immortal. The regression: a negative exptime used to reach the kvcache
// store as ttl < 0, which it treats as never-expiring — the exact opposite.
func TestServerNegativeExptime(t *testing.T) {
	addr, _ := rawServer(t)
	conn, r := rawDial(t, addr)

	send := func(s string) string {
		t.Helper()
		if _, err := fmt.Fprint(conn, s); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\r\n")
	}

	if got := send("set doomed 0 -1 1\r\nx\r\n"); got != "STORED" {
		t.Fatalf("set with negative exptime = %q, want STORED", got)
	}
	time.Sleep(time.Millisecond) // outlive the 1ns translated ttl
	if got := send("get doomed\r\n"); got != "END" {
		t.Fatalf("negative-exptime entry retrievable: %q", got)
	}
	// add over the expired entry succeeds (the slot is free again)...
	if got := send("add doomed 0 -5 1\r\ny\r\n"); got != "STORED" {
		t.Fatalf("add with negative exptime = %q, want STORED", got)
	}
	time.Sleep(time.Millisecond)
	if got := send("get doomed\r\n"); got != "END" {
		t.Fatalf("negative-exptime add retrievable: %q", got)
	}
	// ...while zero exptime stays the immortal path.
	if got := send("set forever 0 0 1\r\nz\r\n"); got != "STORED" {
		t.Fatalf("set = %q", got)
	}
	time.Sleep(time.Millisecond)
	if got := send("get forever\r\n"); got != "VALUE forever 0 1" {
		t.Fatalf("zero-exptime entry missing: %q", got)
	}
	// Drain the data block + END for framing hygiene.
	for i := 0; i < 2; i++ {
		if _, err := r.ReadString('\n'); err != nil {
			t.Fatal(err)
		}
	}
}

// TestApplyBatchSkipsUnsendableOps: ops the server is guaranteed to refuse
// — an oversized value, or a key with whitespace / control characters /
// over-length — are skipped client-side (zero-valued result) while every
// other op in the batch — e.g. the unrelated invalidation deletes the bus
// coalesced with them — still applies. Before the guard, the server aborted
// the whole mop at the first such op and the deletes were silently lost.
func TestApplyBatchSkipsUnsendableOps(t *testing.T) {
	addr, store := rawServer(t)
	store.Set("stale1", []byte("v"), 0)
	store.Set("stale2", []byte("v"), 0)
	pool := NewPool(addr, 2)
	defer pool.Close()

	res := pool.ApplyBatch([]kvcache.BatchOp{
		{Kind: kvcache.BatchDelete, Key: "stale1"},
		{Kind: kvcache.BatchSet, Key: "big", Value: make([]byte, maxValueBytes+1)},
		{Kind: kvcache.BatchDelete, Key: "bad key"},
		{Kind: kvcache.BatchDelete, Key: "ctl\x01key"},
		{Kind: kvcache.BatchDelete, Key: ""},
		{Kind: kvcache.BatchDelete, Key: strings.Repeat("k", maxKeyBytes+1)},
		{Kind: kvcache.BatchDelete, Key: "stale2"},
	})
	if !res[0].Found || !res[6].Found {
		t.Fatalf("deletes around the skipped ops did not apply: %+v", res)
	}
	for i := 1; i <= 5; i++ {
		if res[i].Found {
			t.Fatalf("unsendable op %d reported success: %+v", i, res)
		}
	}
	if _, ok := store.Get("stale1"); ok {
		t.Fatal("stale1 survived the batch")
	}
	if _, ok := store.Get("stale2"); ok {
		t.Fatal("stale2 survived the batch")
	}
	if _, ok := store.Get("big"); ok {
		t.Fatal("oversized value reached the store")
	}
	// The connection stayed framed and healthy.
	if st := pool.Stats(); st.Discards != 0 {
		t.Fatalf("healthy skip discarded the conn: %+v", st)
	}
	// All-unsendable batch: nothing is sent at all.
	res = pool.ApplyBatch([]kvcache.BatchOp{
		{Kind: kvcache.BatchSet, Key: "big2", Value: make([]byte, maxValueBytes+1)},
	})
	if res[0].Found {
		t.Fatalf("all-unsendable batch reported success: %+v", res)
	}
}
