package cacheproto

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

func newPair(t *testing.T) (*kvcache.Store, *Client) {
	t.Helper()
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return store, cli
}

func TestClientSetGet(t *testing.T) {
	_, cli := newPair(t)
	cli.Set("greeting", []byte("hello world"), 0)
	v, ok := cli.Get("greeting")
	if !ok || string(v) != "hello world" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := cli.Get("absent"); ok {
		t.Fatal("Get(absent) = ok")
	}
}

func TestClientBinarySafety(t *testing.T) {
	_, cli := newPair(t)
	payload := []byte("line1\r\nline2\x00binary\xff")
	cli.Set("bin", payload, 0)
	v, ok := cli.Get("bin")
	if !ok || string(v) != string(payload) {
		t.Fatalf("binary round trip failed: %q", v)
	}
}

func TestClientAdd(t *testing.T) {
	_, cli := newPair(t)
	if !cli.Add("k", []byte("1"), 0) {
		t.Fatal("first add failed")
	}
	if cli.Add("k", []byte("2"), 0) {
		t.Fatal("second add succeeded")
	}
}

func TestClientCasCycle(t *testing.T) {
	_, cli := newPair(t)
	cli.Set("k", []byte("v1"), 0)
	v, tok, ok := cli.Gets("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Gets = %q, %v", v, ok)
	}
	if r := cli.Cas("k", []byte("v2"), 0, tok); r != kvcache.CasStored {
		t.Fatalf("Cas = %v", r)
	}
	if r := cli.Cas("k", []byte("v3"), 0, tok); r != kvcache.CasConflict {
		t.Fatalf("stale Cas = %v", r)
	}
	cli.Delete("k")
	if r := cli.Cas("k", []byte("v4"), 0, tok); r != kvcache.CasNotFound {
		t.Fatalf("Cas after delete = %v", r)
	}
}

func TestClientDeleteIncr(t *testing.T) {
	_, cli := newPair(t)
	cli.Set("n", []byte("10"), 0)
	v, ok := cli.Incr("n", 5)
	if !ok || v != 15 {
		t.Fatalf("Incr = %d, %v", v, ok)
	}
	if !cli.Delete("n") {
		t.Fatal("Delete = false")
	}
	if _, ok := cli.Incr("n", 1); ok {
		t.Fatal("Incr after delete succeeded")
	}
}

func TestClientFlushAllAndStats(t *testing.T) {
	store, cli := newPair(t)
	for i := 0; i < 5; i++ {
		cli.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	cli.FlushAll()
	if store.Len() != 0 {
		t.Fatalf("store has %d items after flush", store.Len())
	}
	st, err := cli.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st["cmd_set"] != 5 {
		t.Fatalf("cmd_set = %d", st["cmd_set"])
	}
}

func TestClientTTLExpiry(t *testing.T) {
	// Server-side clock is real; use a 1s TTL and a manufactured clock is
	// not available over the wire, so just verify the TTL is transmitted
	// (value present immediately).
	_, cli := newPair(t)
	cli.Set("k", []byte("v"), 30*time.Second)
	if _, ok := cli.Get("k"); !ok {
		t.Fatal("value with TTL missing immediately")
	}
}

func TestConcurrentClients(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i)
				cli.Set(k, []byte(fmt.Sprintf("v%d", i)), 0)
				v, ok := cli.Get(k)
				if !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Errorf("round trip %s failed", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if store.Len() != 400 {
		t.Fatalf("store has %d items, want 400", store.Len())
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cli.Set("k", []byte("v"), 0)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Operations after close degrade to misses, not hangs.
	done := make(chan struct{})
	go func() {
		cli.Get("k")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client hung after server close")
	}
}

func TestSharedClientConcurrency(t *testing.T) {
	_, cli := newPair(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("s%d", i%7)
				cli.Set(k, []byte("v"), 0)
				cli.Get(k)
			}
		}(g)
	}
	wg.Wait()
}

func TestClientApplyBatchPipelinedRoundTrip(t *testing.T) {
	store, cli := newPair(t)
	store.Set("old", []byte("x"), 0)
	store.Set("ctr", []byte("9"), 0)
	ops := []kvcache.BatchOp{
		{Kind: kvcache.BatchSet, Key: "a", Value: []byte("va")},
		{Kind: kvcache.BatchSet, Key: "bin", Value: []byte("x\r\ny\x00z")},
		{Kind: kvcache.BatchIncr, Key: "ctr", Delta: -4},
		{Kind: kvcache.BatchDelete, Key: "old"},
		{Kind: kvcache.BatchDelete, Key: "missing"},
	}
	res := cli.ApplyBatch(ops)
	want := []kvcache.BatchResult{
		{Found: true},
		{Found: true},
		{Found: true, Value: 5},
		{Found: true},
		{Found: false},
	}
	for i, w := range want {
		if res[i] != w {
			t.Fatalf("op %d: result %+v, want %+v", i, res[i], w)
		}
	}
	if v, ok := store.Get("bin"); !ok || string(v) != "x\r\ny\x00z" {
		t.Fatalf("binary batch value corrupted: %q", v)
	}
	if _, ok := store.Get("old"); ok {
		t.Fatal("batched delete did not apply")
	}
	// The connection stays framed: a normal op after a batch still works.
	cli.Set("after", []byte("ok"), 0)
	if v, ok := cli.Get("after"); !ok || string(v) != "ok" {
		t.Fatalf("connection desynced after batch: %q %v", v, ok)
	}
}

func TestClientApplyBatchEmpty(t *testing.T) {
	_, cli := newPair(t)
	if res := cli.ApplyBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}
