package cacheproto

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/kvcache"
)

// DefaultPoolIdle is the idle-connection bound a Pool uses when none is
// given: enough for the workload driver's default client counts to run
// without serializing, small enough that an idle stack holds only a handful
// of sockets per node.
const DefaultPoolIdle = 8

// Pool is a connection-pooled cacheproto client for one cache server. It
// implements kvcache.Cache and kvcache.BatchApplier like Client, but where a
// single Client serializes every operation on one TCP connection, a Pool
// checks a connection out per operation — concurrent callers (workload
// clients, trigger firings, parallel ring fan-out, invalidation-bus workers)
// proceed on separate connections and only contend on the checkout mutex.
//
// Connections are created lazily, one Dial per checkout miss, and at most
// maxIdle of them are parked for reuse when returned; extras are closed. A
// connection that sees any error mid-operation is discarded instead of being
// returned, so one broken socket never poisons later operations.
//
// Batches still pipeline: ApplyBatch checks out one connection and runs the
// whole mop exchange on it, so a flush from the invalidation bus costs a
// single round trip regardless of pool size.
type Pool struct {
	addr    string
	maxIdle int

	mu     sync.Mutex
	idle   []*Client
	closed bool

	dials    atomic.Int64
	reuses   atomic.Int64
	discards atomic.Int64
}

var (
	_ kvcache.Cache        = (*Pool)(nil)
	_ kvcache.BatchApplier = (*Pool)(nil)
)

// NewPool creates a pool of connections to the cache server at addr.
// maxIdle bounds parked connections (<= 0 picks DefaultPoolIdle). No
// connection is opened until the first operation needs one.
func NewPool(addr string, maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = DefaultPoolIdle
	}
	return &Pool{addr: addr, maxIdle: maxIdle}
}

// Addr returns the server address this pool connects to.
func (p *Pool) Addr() string { return p.addr }

// PoolStats counts pool activity.
type PoolStats struct {
	Dials    int64 // connections opened
	Reuses   int64 // checkouts served from the idle list
	Discards int64 // connections dropped after an error
	Idle     int   // currently parked connections
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	return PoolStats{
		Dials:    p.dials.Load(),
		Reuses:   p.reuses.Load(),
		Discards: p.discards.Load(),
		Idle:     idle,
	}
}

// Close closes all idle connections and marks the pool closed. In-flight
// operations finish on their checked-out connections (which are then closed
// rather than parked); later operations fail to check out and degrade to
// misses, mirroring Client's behaviour against a dead server.
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	var err error
	for _, c := range idle {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// get checks a connection out: newest idle one first, else a fresh dial.
func (p *Pool) get() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("cacheproto: pool for %s is closed", p.addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return c, nil
	}
	p.mu.Unlock()
	c, err := Dial(p.addr)
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	return c, nil
}

// put returns a connection after an operation. A connection that errored is
// closed and dropped — its protocol stream may be unframed; parking it would
// corrupt the next operation. Healthy connections park up to maxIdle.
func (p *Pool) put(c *Client, opErr error) {
	if opErr != nil {
		p.discards.Add(1)
		_ = c.conn.Close()
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	_ = c.Close()
}

// Get implements kvcache.Cache. Checkout or network errors surface as
// misses; callers fall back to the database, the correct degraded behaviour.
func (p *Pool) Get(key string) ([]byte, bool) {
	c, err := p.get()
	if err != nil {
		return nil, false
	}
	v, _, ok, err := c.fetch("get", key)
	p.put(c, err)
	if err != nil {
		return nil, false
	}
	return v, ok
}

// Gets implements kvcache.Cache.
func (p *Pool) Gets(key string) ([]byte, uint64, bool) {
	c, err := p.get()
	if err != nil {
		return nil, 0, false
	}
	v, cas, ok, err := c.fetch("gets", key)
	p.put(c, err)
	if err != nil {
		return nil, 0, false
	}
	return v, cas, ok
}

// Set implements kvcache.Cache.
func (p *Pool) Set(key string, value []byte, ttl time.Duration) {
	c, err := p.get()
	if err != nil {
		return
	}
	p.put(c, c.set(key, value, ttl))
}

// Add implements kvcache.Cache.
func (p *Pool) Add(key string, value []byte, ttl time.Duration) bool {
	c, err := p.get()
	if err != nil {
		return false
	}
	ok, err := c.add(key, value, ttl)
	p.put(c, err)
	return ok
}

// Cas implements kvcache.Cache.
func (p *Pool) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	c, err := p.get()
	if err != nil {
		return kvcache.CasNotFound
	}
	r, err := c.cas(key, value, ttl, cas)
	p.put(c, err)
	return r
}

// Delete implements kvcache.Cache.
func (p *Pool) Delete(key string) bool {
	c, err := p.get()
	if err != nil {
		return false
	}
	ok, err := c.del(key)
	p.put(c, err)
	return ok
}

// Incr implements kvcache.Cache.
func (p *Pool) Incr(key string, delta int64) (int64, bool) {
	c, err := p.get()
	if err != nil {
		return 0, false
	}
	n, ok, err := c.incr(key, delta)
	p.put(c, err)
	return n, ok
}

// FlushAll implements kvcache.Cache.
func (p *Pool) FlushAll() {
	c, err := p.get()
	if err != nil {
		return
	}
	p.put(c, c.flushAll())
}

// ApplyBatch implements kvcache.BatchApplier: the whole batch runs as one
// pipelined mop exchange on a single checked-out connection, so it costs one
// round trip while other operations proceed on other connections.
func (p *Pool) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	c, err := p.get()
	if err != nil {
		return make([]kvcache.BatchResult, len(ops))
	}
	res, err := c.applyBatch(ops)
	p.put(c, err)
	return res
}

// ServerStats fetches the server's counters over a pooled connection.
func (p *Pool) ServerStats() (map[string]int64, error) {
	c, err := p.get()
	if err != nil {
		return nil, err
	}
	st, err := c.ServerStats()
	p.put(c, err)
	return st, err
}
