package cacheproto

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/kvcache"
)

// DefaultPoolIdle is the idle-connection bound a Pool uses when none is
// given: enough for the workload driver's default client counts to run
// without serializing, small enough that an idle stack holds only a handful
// of sockets per node.
const DefaultPoolIdle = 8

// DefaultPoolMaxConns is the default total-connection cap (idle plus checked
// out plus in-flight dials). Before the cap, a burst of concurrent checkouts
// against an empty pool would each dial — a cold or recovering node could see
// an unbounded connection storm; the cap makes excess checkouts wait for a
// returned connection instead.
const DefaultPoolMaxConns = 4 * DefaultPoolIdle

// DefaultFailThreshold is how many consecutive operation failures trip the
// circuit breaker.
const DefaultFailThreshold = 3

// DefaultProbeInterval is how often a tripped pool probes the server in the
// background to decide whether to close the breaker again.
const DefaultProbeInterval = 250 * time.Millisecond

// BreakerState is the pool's health state.
type BreakerState int32

// Breaker states, the classic three-state machine.
const (
	// BreakerClosed: healthy, operations flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the node is considered dead; operations fail fast as
	// misses without touching the network, and a background probe runs every
	// ProbeInterval.
	BreakerOpen
	// BreakerHalfOpen: a probe is in flight; operations still fail fast
	// until it succeeds.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// PoolConfig assembles a Pool. The zero value of every field except Addr is
// usable.
type PoolConfig struct {
	// Addr is the cache server address. Required.
	Addr string
	// MaxIdle bounds parked connections (<= 0 picks DefaultPoolIdle).
	MaxIdle int
	// MaxConns caps total connections — idle, checked out, and dialing
	// (<= 0 picks DefaultPoolMaxConns; raised to MaxIdle if below it).
	// Checkouts beyond the cap wait for a returned connection.
	MaxConns int
	// FailThreshold is how many consecutive operation failures trip the
	// circuit breaker (<= 0 picks DefaultFailThreshold). Any successful
	// operation resets the count.
	FailThreshold int
	// ProbeInterval is the background probe cadence while the breaker is
	// open (<= 0 picks DefaultProbeInterval).
	ProbeInterval time.Duration
	// OpTimeout, when positive, bounds every dial and every round trip on
	// pooled connections with a connection deadline. A node that accepts but
	// never answers then times out, releasing its checkout slot and feeding
	// the breaker, instead of holding the slot forever (the breaker only
	// sees completed failures). 0 disables deadlines.
	OpTimeout time.Duration
	// DisableBreaker keeps the pre-breaker behaviour: every operation
	// against a dead node attempts a fresh dial. Used as the Experiment 8
	// baseline; production callers should leave it false.
	DisableBreaker bool
	// L1Entries, when positive, puts a near-cache of that many entries in
	// front of the pool: Get serves lease-live local entries without a
	// network round trip, every write-shaped operation through the pool
	// invalidates its key locally (which is how invalidation-bus fan-out
	// flushes reach it), and entries self-expire after L1TTL so an
	// invalidation this client never saw still cannot produce a read
	// staler than the lease. Sized for a few thousand entries — it exists
	// to absorb hot-key read storms, not to mirror the node.
	L1Entries int
	// L1TTL is the near-cache entry lease (<= 0 picks DefaultL1TTL, which
	// matches the invalidation bus's default BatchWindow). Deployments
	// that raise the bus BatchWindow should raise L1TTL with it — the
	// stack wires the two together — but never above the staleness the
	// tier is willing to serve.
	L1TTL time.Duration
}

// Pool is a connection-pooled cacheproto client for one cache server. It
// implements kvcache.Cache and kvcache.BatchApplier like Client, but where a
// single Client serializes every operation on one TCP connection, a Pool
// checks a connection out per operation — concurrent callers (workload
// clients, trigger firings, parallel ring fan-out, invalidation-bus workers)
// proceed on separate connections and only contend on the checkout mutex.
//
// Connections are created lazily, one Dial per checkout miss, at most
// MaxConns in existence at once (excess checkouts wait for a return), and at
// most MaxIdle of them are parked for reuse when returned; extras are
// closed. A connection that sees any error mid-operation is discarded
// instead of being returned, so one broken socket never poisons later
// operations.
//
// Health. The pool tracks consecutive operation failures; at FailThreshold
// the circuit breaker trips and subsequent operations fail fast as misses —
// no dial, no network — so a dead node costs nanoseconds per op instead of a
// dial timeout. While open, a background goroutine probes the server every
// ProbeInterval (half-open state); one successful round trip closes the
// breaker and the probe's connection is parked for reuse.
//
// Batches still pipeline: ApplyBatch checks out one connection and runs the
// whole mop exchange on it, so a flush from the invalidation bus costs a
// single round trip regardless of pool size.
type Pool struct {
	cfg PoolConfig
	m   *PoolMetrics // always-on; see PoolMetrics
	l1  *l1cache     // near-cache, nil unless PoolConfig.L1Entries > 0

	// mu guards checkout state only; dials and round trips happen with it
	// released (cond.Wait releases it too). lockscope-enforced.
	//
	//genie:nonblocking
	mu      sync.Mutex
	cond    *sync.Cond // signalled when a connection returns or the pool state changes
	idle    []*Client
	total   int // connections in existence: idle + checked out + dialing
	closed  bool
	fails   int          // consecutive operation failures (guarded by mu)
	state   BreakerState // guarded by mu
	probing bool         // a probe goroutine is running (guarded by mu)
	closeCh chan struct{}

	dials     atomic.Int64
	dialFails atomic.Int64
	reuses    atomic.Int64
	discards  atomic.Int64
	failFast  atomic.Int64
	trips     atomic.Int64
	waits     atomic.Int64
	probes    atomic.Int64
}

var (
	_ kvcache.Cache        = (*Pool)(nil)
	_ kvcache.BatchApplier = (*Pool)(nil)
)

// NewPool creates a pool of connections to the cache server at addr with
// default health checking. maxIdle bounds parked connections (<= 0 picks
// DefaultPoolIdle). No connection is opened until the first operation needs
// one.
func NewPool(addr string, maxIdle int) *Pool {
	return NewPoolWithConfig(PoolConfig{Addr: addr, MaxIdle: maxIdle})
}

// NewPoolWithConfig creates a pool with explicit health and sizing knobs.
func NewPoolWithConfig(cfg PoolConfig) *Pool {
	if cfg.MaxIdle <= 0 {
		cfg.MaxIdle = DefaultPoolIdle
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultPoolMaxConns
	}
	if cfg.MaxConns < cfg.MaxIdle {
		cfg.MaxConns = cfg.MaxIdle
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	p := &Pool{cfg: cfg, m: &PoolMetrics{}, closeCh: make(chan struct{})}
	if cfg.L1Entries > 0 {
		p.l1 = newL1(cfg.L1Entries, cfg.L1TTL)
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Addr returns the server address this pool connects to.
func (p *Pool) Addr() string { return p.cfg.Addr }

// State returns the breaker's current state.
func (p *Pool) State() BreakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Healthy reports whether the breaker is closed — the node is worth
// dialing. It implements cluster.HealthReporter, letting the consistent-
// hash ring route a read around an open breaker *before* paying even the
// fail-fast path, and fail over to the key's next replica instead of
// degrading to a miss.
func (p *Pool) Healthy() bool { return p.State() == BreakerClosed }

// PoolStats counts pool activity.
type PoolStats struct {
	Dials     int64 // connections opened
	DialFails int64 // dial attempts that failed (the dial-storm signal)
	Reuses    int64 // checkouts served from the idle list
	Discards  int64 // connections dropped after an error
	Idle      int   // currently parked connections
	Conns     int   // total connections in existence (idle + checked out)
	Waits     int64 // checkouts that blocked on the MaxConns cap
	FailFast  int64 // operations short-circuited by an open breaker
	Trips     int64 // closed→open breaker transitions
	Probes    int64 // background probe attempts while open
	State     BreakerState
}

// L1Stats returns near-cache counters; all-zero when the L1 is disabled.
func (p *Pool) L1Stats() L1Stats {
	if p.l1 == nil {
		return L1Stats{}
	}
	return p.l1.stats()
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle, total, state := len(p.idle), p.total, p.state
	p.mu.Unlock()
	return PoolStats{
		Dials:     p.dials.Load(),
		DialFails: p.dialFails.Load(),
		Reuses:    p.reuses.Load(),
		Discards:  p.discards.Load(),
		Idle:      idle,
		Conns:     total,
		Waits:     p.waits.Load(),
		FailFast:  p.failFast.Load(),
		Trips:     p.trips.Load(),
		Probes:    p.probes.Load(),
		State:     state,
	}
}

// Close closes all idle connections and marks the pool closed. In-flight
// operations finish on their checked-out connections (which are then closed
// rather than parked); later operations fail to check out and degrade to
// misses, mirroring Client's behaviour against a dead server. The background
// probe, if running, stops.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	idle := p.idle
	p.idle = nil
	p.total -= len(idle)
	p.closed = true
	close(p.closeCh)
	p.cond.Broadcast()
	p.mu.Unlock()
	var err error
	for _, c := range idle {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

var errBreakerOpen = fmt.Errorf("cacheproto: circuit breaker open")

// get checks a connection out: newest idle one first, else a fresh dial if
// the MaxConns cap allows, else it waits for a returned connection. With the
// breaker open it fails immediately without touching the network.
func (p *Pool) get() (*Client, error) {
	p.mu.Lock()
	waited := false
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("cacheproto: pool for %s is closed", p.cfg.Addr)
		}
		if p.state != BreakerClosed {
			p.mu.Unlock()
			p.failFast.Add(1)
			return nil, errBreakerOpen
		}
		if n := len(p.idle); n > 0 {
			c := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			p.reuses.Add(1)
			return c, nil
		}
		if p.total < p.cfg.MaxConns {
			p.total++ // reserve the slot while dialing
			break
		}
		if !waited {
			waited = true
			p.waits.Add(1)
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
	c, err := DialTimeout(p.cfg.Addr, p.cfg.OpTimeout)
	if err != nil {
		p.dialFails.Add(1)
		p.mu.Lock()
		p.total--
		p.recordFailureLocked()
		p.cond.Signal()
		p.mu.Unlock()
		return nil, err
	}
	p.dials.Add(1)
	return c, nil
}

// put returns a connection after an operation. A connection that errored is
// closed and dropped — its protocol stream may be unframed; parking it would
// corrupt the next operation — and the failure counts toward the breaker
// threshold. Healthy connections reset the failure count and park up to
// MaxIdle.
func (p *Pool) put(c *Client, opErr error) {
	if opErr != nil {
		p.discards.Add(1)
		_ = c.conn.Close()
		p.mu.Lock()
		p.total--
		p.recordFailureLocked()
		p.cond.Signal()
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.fails = 0
	if !p.closed && len(p.idle) < p.cfg.MaxIdle {
		p.idle = append(p.idle, c)
		p.cond.Signal()
		p.mu.Unlock()
		return
	}
	p.total--
	p.cond.Signal()
	p.mu.Unlock()
	_ = c.Close()
}

// recordFailureLocked counts one operation failure and trips the breaker at
// the threshold. Caller holds p.mu.
func (p *Pool) recordFailureLocked() {
	if p.cfg.DisableBreaker || p.closed {
		return
	}
	p.fails++
	if p.state != BreakerClosed || p.fails < p.cfg.FailThreshold {
		return
	}
	p.state = BreakerOpen
	p.trips.Add(1)
	// Waiters blocked on the MaxConns cap should fail fast now, not wait for
	// a connection that will never return healthy.
	p.cond.Broadcast()
	// Discard the idle list: parked connections to a node that just failed
	// FailThreshold times in a row are almost certainly dead too, and the
	// probe re-establishes a fresh one on recovery.
	idle := p.idle
	p.idle = nil
	p.total -= len(idle)
	for _, c := range idle {
		_ = c.conn.Close()
	}
	if !p.probing {
		p.probing = true
		go p.probeLoop()
	}
}

// probeLoop runs while the breaker is open: every ProbeInterval it goes
// half-open, attempts one full protocol round trip, and either closes the
// breaker (parking the probe connection) or re-opens and tries again.
func (p *Pool) probeLoop() {
	timer := time.NewTimer(p.cfg.ProbeInterval)
	defer timer.Stop()
	for {
		select {
		case <-p.closeCh:
			p.mu.Lock()
			p.probing = false
			p.mu.Unlock()
			return
		case <-timer.C:
		}
		p.mu.Lock()
		if p.closed || p.state == BreakerClosed {
			p.probing = false
			p.mu.Unlock()
			return
		}
		p.state = BreakerHalfOpen
		p.mu.Unlock()
		p.probes.Add(1)
		if c := p.probe(); c != nil {
			p.mu.Lock()
			p.state = BreakerClosed
			p.fails = 0
			p.probing = false
			if !p.closed && len(p.idle) < p.cfg.MaxIdle && p.total < p.cfg.MaxConns {
				p.idle = append(p.idle, c)
				p.total++
				c = nil
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			if c != nil {
				_ = c.Close()
			}
			return
		}
		p.mu.Lock()
		p.state = BreakerOpen
		p.mu.Unlock()
		timer.Reset(p.cfg.ProbeInterval)
	}
}

// probe attempts one dial plus one stats round trip — proof the server is
// accepting connections and speaking the protocol, not merely listening.
// Returns the healthy connection, or nil.
func (p *Pool) probe() *Client {
	c, err := DialTimeout(p.cfg.Addr, p.cfg.OpTimeout)
	if err != nil {
		return nil
	}
	if _, err := c.ServerStats(); err != nil {
		_ = c.conn.Close()
		return nil
	}
	return c
}

// Get implements kvcache.Cache. Checkout or network errors surface as
// misses; callers fall back to the database, the correct degraded
// behaviour. With the near-cache enabled a lease-live L1 entry is served
// without any network round trip (an open breaker doesn't block it either
// — the freshest locally known value beats a guaranteed miss); a server
// hit re-arms the key's lease on the way out.
func (p *Pool) Get(key string) ([]byte, bool) {
	if l := p.l1; l != nil {
		if v, ok := l.lookup(key, time.Now().UnixNano()); ok {
			return v, true
		}
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opGet, start, err)
		return nil, false
	}
	v, _, ok, err := c.fetch(false, key)
	p.put(c, err)
	p.done(opGet, start, err)
	if err != nil {
		return nil, false
	}
	if ok && p.l1 != nil {
		p.l1.store(key, v, time.Now().UnixNano())
	}
	return v, ok
}

// Gets implements kvcache.Cache.
func (p *Pool) Gets(key string) ([]byte, uint64, bool) {
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opGets, start, err)
		return nil, 0, false
	}
	v, cas, ok, err := c.fetch(true, key)
	p.put(c, err)
	p.done(opGets, start, err)
	if err != nil {
		return nil, 0, false
	}
	return v, cas, ok
}

// Set implements kvcache.Cache. A near-cached key is invalidated, not
// updated in place: the server is the arbiter of racing writes, and the
// next read re-earns the entry from whatever value actually won.
func (p *Pool) Set(key string, value []byte, ttl time.Duration) {
	if p.l1 != nil {
		p.l1.invalidate(key)
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opSet, start, err)
		return
	}
	err = c.set(key, value, ttl)
	p.put(c, err)
	p.done(opSet, start, err)
}

// Add implements kvcache.Cache.
func (p *Pool) Add(key string, value []byte, ttl time.Duration) bool {
	if p.l1 != nil {
		p.l1.invalidate(key)
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opAdd, start, err)
		return false
	}
	ok, err := c.add(key, value, ttl)
	p.put(c, err)
	p.done(opAdd, start, err)
	return ok
}

// Cas implements kvcache.Cache.
func (p *Pool) Cas(key string, value []byte, ttl time.Duration, cas uint64) kvcache.CasResult {
	if p.l1 != nil {
		p.l1.invalidate(key)
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opCas, start, err)
		return kvcache.CasNotFound
	}
	r, err := c.cas(key, value, ttl, cas)
	p.put(c, err)
	p.done(opCas, start, err)
	return r
}

// Delete implements kvcache.Cache. This is the path invalidation-bus
// flushes ride (bus → ring fan-out → this pool), so the near-cache entry
// dies here with the server's copy.
func (p *Pool) Delete(key string) bool {
	if p.l1 != nil {
		p.l1.invalidate(key)
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opDelete, start, err)
		return false
	}
	ok, err := c.del(key)
	p.put(c, err)
	p.done(opDelete, start, err)
	return ok
}

// Incr implements kvcache.Cache.
func (p *Pool) Incr(key string, delta int64) (int64, bool) {
	if p.l1 != nil {
		p.l1.invalidate(key)
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opIncr, start, err)
		return 0, false
	}
	n, ok, err := c.incr(key, delta)
	p.put(c, err)
	p.done(opIncr, start, err)
	return n, ok
}

// FlushAll implements kvcache.Cache.
func (p *Pool) FlushAll() {
	if p.l1 != nil {
		p.l1.flush()
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opOther, start, err)
		return
	}
	err = c.flushAll()
	p.put(c, err)
	p.done(opOther, start, err)
}

// ApplyBatch implements kvcache.BatchApplier: the whole batch runs as one
// pipelined mop exchange on a single checked-out connection, so it costs one
// round trip while other operations proceed on other connections.
func (p *Pool) ApplyBatch(ops []kvcache.BatchOp) []kvcache.BatchResult {
	if len(ops) == 0 {
		return nil
	}
	if p.l1 != nil {
		// Every batched mutation invalidates its near-cache entry — batches
		// are exactly how the invalidation bus delivers trigger maintenance.
		for i := range ops {
			p.l1.invalidate(ops[i].Key)
		}
	}
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opMop, start, err)
		return make([]kvcache.BatchResult, len(ops))
	}
	res, err := c.applyBatch(ops)
	p.put(c, err)
	p.done(opMop, start, err)
	if err != nil {
		// A batch that broke mid-stream has partially-trustworthy results at
		// best; report all-failed so callers treat it as a lost flush.
		return make([]kvcache.BatchResult, len(ops))
	}
	return res
}

// Keys fetches the server's live key list over a pooled connection; the
// cluster membership-change handoff drains a remapped key share through it.
func (p *Pool) Keys() ([]string, error) {
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opOther, start, err)
		return nil, err
	}
	keys, err := c.Keys()
	p.put(c, err)
	p.done(opOther, start, err)
	return keys, err
}

// ServerStats fetches the server's counters over a pooled connection.
func (p *Pool) ServerStats() (map[string]int64, error) {
	start := time.Now()
	c, err := p.get()
	if err != nil {
		p.done(opOther, start, err)
		return nil, err
	}
	st, err := c.ServerStats()
	p.put(c, err)
	p.done(opOther, start, err)
	return st, err
}
