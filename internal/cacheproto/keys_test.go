package cacheproto

import (
	"sort"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

// TestKeysCommand round-trips the keys command through client and pool: the
// enumeration matches the store, expired entries are excluded, and an empty
// store lists nothing.
func TestKeysCommand(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("empty store listed %v", keys)
	}

	want := []string{"alpha", "beta", "gamma"}
	for _, k := range want {
		store.Set(k, []byte("v"), 0)
	}
	store.Set("doomed", []byte("v"), time.Nanosecond)
	time.Sleep(2 * time.Millisecond)

	keys, err = c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v (expired entry must not list)", keys, want)
	}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}

	// The pooled client speaks it too — this is the path cluster handoff
	// actually uses.
	p := NewPool(addr, 2)
	defer p.Close()
	pk, err := p.Keys()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(pk)
	if len(pk) != len(want) || pk[0] != "alpha" || pk[2] != "gamma" {
		t.Fatalf("Pool.Keys = %v, want %v", pk, want)
	}

	// A dead server surfaces as an error, not an empty (successfully
	// enumerated) key list — handoff relies on the distinction to count the
	// node skipped rather than treating it as clean.
	_ = srv.Close()
	p2 := NewPool(addr, 2)
	defer p2.Close()
	if _, err := p2.Keys(); err == nil {
		t.Fatal("Keys against a dead server returned no error")
	}
}

// TestBatchAddOverWire: BatchAdd ops ride a mop exchange with add-if-absent
// semantics — the handoff warmup path: an existing (fresher) value wins,
// an absent key is stored.
func TestBatchAddOverWire(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := NewPool(addr, 2)
	defer p.Close()

	store.Set("taken", []byte("fresh"), 0)
	res := p.ApplyBatch([]kvcache.BatchOp{
		{Kind: kvcache.BatchAdd, Key: "taken", Value: []byte("stale")},
		{Kind: kvcache.BatchAdd, Key: "empty", Value: []byte("copied")},
	})
	if res[0].Found {
		t.Fatal("add over an existing key reported stored")
	}
	if !res[1].Found {
		t.Fatal("add to an absent key reported not stored")
	}
	if v, _ := store.GetQuiet("taken"); string(v) != "fresh" {
		t.Fatalf("existing value clobbered: %q", v)
	}
	if v, ok := store.GetQuiet("empty"); !ok || string(v) != "copied" {
		t.Fatalf("absent key not stored: %q/%v", v, ok)
	}
}
