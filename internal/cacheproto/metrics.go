package cacheproto

import (
	"errors"
	"net"
	"time"

	"cachegenie/internal/hotkey"
	"cachegenie/internal/obs"
)

// opKind indexes the per-operation instrumentation arrays shared by the
// server and the client pool. Fixed arrays keyed by a small enum keep the
// hot path free of map lookups and allocations; the registry only ever sees
// the same histogram objects by pointer.
type opKind uint8

// Operation kinds. opOther catches commands without their own series
// (stats, keys, flush_all, quit, unknown).
const (
	opGet opKind = iota
	opGets
	opSet
	opAdd
	opCas
	opDelete
	opIncr
	opMop
	opOther
	opKindCount
)

var opNames = [opKindCount]string{
	"get", "gets", "set", "add", "cas", "delete", "incr", "mop", "other",
}

// classifyCmd maps a command's bytes to its opKind without allocating (the
// string conversions in a switch are compiler-recognized).
//
//genie:hotpath
func classifyCmd(cmd []byte) opKind {
	switch string(cmd) {
	case "get":
		return opGet
	case "gets":
		return opGets
	case "set":
		return opSet
	case "add":
		return opAdd
	case "cas":
		return opCas
	case "delete":
		return opDelete
	case "incr":
		return opIncr
	case "mop":
		return opMop
	}
	return opOther
}

// Metric names. The server and pool series deliberately share the op label
// vocabulary so one dashboard query shape covers both sides of the wire.
const (
	// ServerOpLatencyName / PoolOpLatencyName are the per-op latency
	// histogram families; consumers (genieload's live ticker) match on them
	// to merge per-interval distributions across nodes.
	ServerOpLatencyName = "cachegenie_server_op_latency_seconds"
	PoolOpLatencyName   = "cachegenie_pool_op_latency_seconds"
	// PoolBreakerGaugeName is the per-node breaker-state gauge (0 closed,
	// 1 open, 2 half-open); obs.BreakerHealth keys /healthz off it.
	PoolBreakerGaugeName = "cachegenie_pool_breaker_state"
)

// ServerMetrics is a Server's always-on instrumentation: one latency
// histogram per op kind, plus error and connection accounting. It exists
// (and records) whether or not a registry is attached, so the hot path
// never branches on "is observability enabled" — recording is a handful of
// atomic ops, a measured 0 allocs/op property.
type ServerMetrics struct {
	OpNanos     [opKindCount]obs.Histogram
	Errors      obs.Counter // commands answered with an error line
	ConnsOpened obs.Counter
	ActiveConns obs.Gauge
	// HotKeys samples get/gets key popularity (hotkey.Detector) so each
	// node reports — over /metrics and the wire stats command — how much
	// of its read load concentrates on flagged-hot keys. NewServer always
	// attaches one; a zero ServerMetrics leaves it nil and the sampler is
	// skipped.
	HotKeys *hotkey.Detector
}

// Register attaches the metrics to reg under a node label ("" omits it).
// Re-registering (a revived node's fresh server) rebinds the series to this
// instance.
func (m *ServerMetrics) Register(reg *obs.Registry, node string) {
	if m == nil || reg == nil {
		return
	}
	for k := opKind(0); k < opKindCount; k++ {
		reg.RegisterHistogram(ServerOpLatencyName, opLabels(node, opNames[k]),
			"server-side command latency by op type", obs.UnitNanoseconds, &m.OpNanos[k])
	}
	reg.RegisterCounter("cachegenie_server_errors_total", nodeLabels(node),
		"commands answered with a protocol error line", &m.Errors)
	reg.RegisterCounter("cachegenie_server_conns_opened_total", nodeLabels(node),
		"connections accepted", &m.ConnsOpened)
	reg.RegisterGauge("cachegenie_server_active_conns", nodeLabels(node),
		"connections currently open", &m.ActiveConns)
	if hk := m.HotKeys; hk != nil {
		reg.CounterFunc("cachegenie_hotkey_observed_total", nodeLabels(node),
			"reads observed by the popularity sampler", func() int64 { return hk.Stats().Observed })
		reg.CounterFunc("cachegenie_hotkey_flagged_total", nodeLabels(node),
			"reads judged hot at observation time", func() int64 { return hk.Stats().Flagged })
		reg.CounterFunc("cachegenie_hotkey_decays_total", nodeLabels(node),
			"popularity-sampler decay sweeps", func() int64 { return hk.Stats().Decays })
	}
}

// PoolMetrics is a Pool's always-on instrumentation: client-observed
// latency per op kind (includes checkout, dial, and breaker fail-fast
// time — the latency an application actually experiences), plus error and
// timeout counters.
type PoolMetrics struct {
	OpNanos  [opKindCount]obs.Histogram
	Errors   obs.Counter // operations that failed (dial, I/O, protocol)
	Timeouts obs.Counter // the subset of Errors that were deadline expiries
}

// done records one completed pool op: latency always (fail-fast included —
// that nanosecond-scale path is exactly what an open breaker buys, and it
// belongs in the client-observed distribution); error and timeout counters
// only when the op failed for a reason other than an open breaker, which is
// accounted separately as fail_fast.
func (p *Pool) done(k opKind, start time.Time, err error) {
	p.m.OpNanos[k].ObserveSince(start)
	if err == nil || err == errBreakerOpen {
		return
	}
	p.m.Errors.Inc()
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		p.m.Timeouts.Inc()
	}
}

// Register attaches the pool's metrics — histograms, error counters, and
// live views over the pool's existing breaker/connection state — to reg
// under a node label ("" omits it).
func (p *Pool) RegisterMetrics(reg *obs.Registry, node string) {
	if p == nil || reg == nil {
		return
	}
	m := p.m
	for k := opKind(0); k < opKindCount; k++ {
		reg.RegisterHistogram(PoolOpLatencyName, opLabels(node, opNames[k]),
			"client-observed cache op latency by op type", obs.UnitNanoseconds, &m.OpNanos[k])
	}
	labels := nodeLabels(node)
	reg.RegisterCounter("cachegenie_pool_op_errors_total", labels,
		"cache ops that failed (dial, I/O, or protocol error)", &m.Errors)
	reg.RegisterCounter("cachegenie_pool_op_timeouts_total", labels,
		"cache ops that failed by exceeding the op deadline", &m.Timeouts)
	reg.GaugeFunc(PoolBreakerGaugeName, labels,
		"circuit breaker state: 0 closed, 1 open, 2 half-open",
		func() int64 { return int64(p.State()) })
	reg.GaugeFunc("cachegenie_pool_conns_in_use", labels,
		"connections checked out or dialing right now", func() int64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return int64(p.total - len(p.idle))
		})
	reg.GaugeFunc("cachegenie_pool_conns_idle", labels,
		"connections parked for reuse", func() int64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return int64(len(p.idle))
		})
	reg.CounterFunc("cachegenie_pool_dials_total", labels,
		"connections opened", p.dials.Load)
	reg.CounterFunc("cachegenie_pool_dial_fails_total", labels,
		"dial attempts that failed", p.dialFails.Load)
	reg.CounterFunc("cachegenie_pool_discards_total", labels,
		"connections dropped after an error", p.discards.Load)
	reg.CounterFunc("cachegenie_pool_fail_fast_total", labels,
		"ops short-circuited by an open breaker", p.failFast.Load)
	reg.CounterFunc("cachegenie_pool_breaker_trips_total", labels,
		"closed-to-open breaker transitions", p.trips.Load)
	if l := p.l1; l != nil {
		reg.CounterFunc("cachegenie_l1_hits_total", labels,
			"near-cache lookups served locally without a round trip", l.hits.Load)
		reg.CounterFunc("cachegenie_l1_misses_total", labels,
			"near-cache lookups that fell through to the server", l.misses.Load)
		reg.CounterFunc("cachegenie_l1_stores_total", labels,
			"near-cache entries written after a server hit", l.stores.Load)
		reg.CounterFunc("cachegenie_l1_evictions_total", labels,
			"near-cache entries dropped to stay within the size bound", l.evictions.Load)
		reg.CounterFunc("cachegenie_l1_invalidations_total", labels,
			"near-cache entries dropped by a write or delete on their key", l.invalidations.Load)
		reg.CounterFunc("cachegenie_l1_expired_total", labels,
			"near-cache lookups that found an entry past its lease", l.expired.Load)
		reg.GaugeFunc("cachegenie_l1_items", labels,
			"near-cache entries currently resident", func() int64 { return l.stats().Items })
	}
	reg.CounterFunc("cachegenie_pool_waits_total", labels,
		"checkouts that blocked on the connection cap", p.waits.Load)
	reg.CounterFunc("cachegenie_pool_probes_total", labels,
		"background probe attempts while the breaker was open", p.probes.Load)
}

func nodeLabels(node string) string {
	if node == "" {
		return ""
	}
	return `node="` + node + `"`
}

func opLabels(node, op string) string {
	if node == "" {
		return `op="` + op + `"`
	}
	return `node="` + node + `",op="` + op + `"`
}
