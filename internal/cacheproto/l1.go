package cacheproto

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultL1TTL is the lease a near-cache entry lives under when PoolConfig
// enables the L1 without an explicit TTL. It matches the invalidation
// bus's default BatchWindow: an invalidation published elsewhere reaches
// this process within about one window, and an L1 entry that never sees it
// (another process's bus, a network partition) dies of lease expiry on the
// same clock — so L1 staleness is bounded by the same window async
// invalidation already imposes on the tier.
const DefaultL1TTL = time.Millisecond

// l1Stripes shards the near-cache map so a flash crowd's lookups don't
// serialize on one mutex. Power of two; the key hash picks the stripe.
const l1Stripes = 8

// L1Stats counts near-cache activity.
type L1Stats struct {
	Hits          int64 // lookups served locally, no network round trip
	Misses        int64 // lookups that fell through to the server
	Stores        int64 // entries written after a server hit or local write
	Evictions     int64 // entries dropped to stay within the size bound
	Invalidations int64 // entries dropped because a write or delete touched the key
	Expired       int64 // lookups that found an entry past its lease
	Items         int64 // entries currently resident
}

// add accumulates other into s (Stack-level aggregation across pools).
func (s *L1Stats) Add(o L1Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Stores += o.Stores
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Expired += o.Expired
	s.Items += o.Items
}

type l1entry struct {
	val []byte
	// deadline is the lease expiry (UnixNano): a stale entry cannot be
	// served past it even if its invalidation never reached this client.
	deadline int64
	// epoch stamps which FlushAll generation the entry belongs to; a flush
	// bumps the cache epoch and orphans every older entry in O(1).
	epoch uint64
}

type l1stripe struct {
	mu sync.RWMutex
	m  map[string]l1entry
}

// l1cache is the per-client near-cache: a few thousand lease-stamped
// entries in front of one node's connection pool. Entries are stored only
// from server responses or this client's own writes, invalidated by every
// write-shaped operation that passes through the pool (which is how the
// invalidation bus's fan-out reaches it — bus flushes ride the same pool),
// and lease-bounded so an invalidation this client never saw still cannot
// produce a read staler than the TTL.
type l1cache struct {
	ttl      time.Duration
	capacity int // total entries across stripes
	epoch    atomic.Uint64

	stripes [l1Stripes]l1stripe

	hits          atomic.Int64
	misses        atomic.Int64
	stores        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	expired       atomic.Int64
}

func newL1(entries int, ttl time.Duration) *l1cache {
	if ttl <= 0 {
		ttl = DefaultL1TTL
	}
	l := &l1cache{ttl: ttl, capacity: entries}
	for i := range l.stripes {
		l.stripes[i].m = make(map[string]l1entry, entries/l1Stripes+1)
	}
	return l
}

// l1hash mixes a key into a stripe index: FNV-1a, good enough for eight
// stripes and free of the full finalizer.
//
//genie:hotpath
func l1hash(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// lookup returns the entry for key if it is lease-live and epoch-current.
// The returned slice is the stored one — callers must treat it as
// read-only, which every caller of kvcache.Cache.Get already does.
//
//genie:hotpath
func (l *l1cache) lookup(key string, now int64) ([]byte, bool) {
	s := &l.stripes[l1hash(key)&(l1Stripes-1)]
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		l.misses.Add(1)
		return nil, false
	}
	if e.epoch != l.epoch.Load() || now >= e.deadline {
		l.expired.Add(1)
		l.misses.Add(1)
		return nil, false
	}
	l.hits.Add(1)
	return e.val, true
}

// store inserts a fresh entry under a new lease, evicting arbitrary
// entries from the stripe when the cache is over budget (the map's
// iteration order is effectively random, which for a near-cache whose
// whole population re-earns its place every lease is as good as LRU).
func (l *l1cache) store(key string, val []byte, now int64) {
	s := &l.stripes[l1hash(key)&(l1Stripes-1)]
	perStripe := l.capacity / l1Stripes
	if perStripe < 1 {
		perStripe = 1
	}
	s.mu.Lock()
	if _, exists := s.m[key]; !exists && len(s.m) >= perStripe {
		evict := len(s.m) - perStripe + 1
		for k := range s.m {
			delete(s.m, k)
			l.evictions.Add(1)
			evict--
			if evict <= 0 {
				break
			}
		}
	}
	s.m[key] = l1entry{val: val, deadline: now + l.ttl.Nanoseconds(), epoch: l.epoch.Load()}
	s.mu.Unlock()
	l.stores.Add(1)
}

// invalidate drops key; every write-shaped pool operation calls it, which
// is how invbus fan-out flushes reach the near-cache.
func (l *l1cache) invalidate(key string) {
	s := &l.stripes[l1hash(key)&(l1Stripes-1)]
	s.mu.Lock()
	_, ok := s.m[key]
	if ok {
		delete(s.m, key)
	}
	s.mu.Unlock()
	if ok {
		l.invalidations.Add(1)
	}
}

// flush orphans every entry by bumping the epoch (O(1)); the orphans are
// overwritten or evicted as traffic returns.
func (l *l1cache) flush() {
	l.epoch.Add(1)
}

func (l *l1cache) stats() L1Stats {
	var items int64
	for i := range l.stripes {
		l.stripes[i].mu.RLock()
		items += int64(len(l.stripes[i].m))
		l.stripes[i].mu.RUnlock()
	}
	return L1Stats{
		Hits:          l.hits.Load(),
		Misses:        l.misses.Load(),
		Stores:        l.stores.Load(),
		Evictions:     l.evictions.Load(),
		Invalidations: l.invalidations.Load(),
		Expired:       l.expired.Load(),
		Items:         items,
	}
}
