package cacheproto

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachegenie/internal/kvcache"
)

// newL1PoolPair is newPoolPair with the near-cache enabled.
func newL1PoolPair(t *testing.T, entries int, ttl time.Duration) (*kvcache.Store, *Pool) {
	t.Helper()
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	pool := NewPoolWithConfig(PoolConfig{Addr: addr, MaxIdle: 2, L1Entries: entries, L1TTL: ttl})
	t.Cleanup(func() { _ = pool.Close() })
	return store, pool
}

// TestL1ServesRepeatReadsLocally: after one server round trip the key's
// reads are served from the near-cache — the server sees no further gets
// while the lease lives.
func TestL1ServesRepeatReadsLocally(t *testing.T) {
	store, pool := newL1PoolPair(t, 1024, time.Minute)
	pool.Set("k", []byte("v"), 0)
	if v, ok := pool.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	serverHits := store.Stats().Hits
	for i := 0; i < 100; i++ {
		if v, ok := pool.Get("k"); !ok || string(v) != "v" {
			t.Fatalf("read %d: Get = %q, %v", i, v, ok)
		}
	}
	if got := store.Stats().Hits; got != serverHits {
		t.Fatalf("server served %d gets that the L1 should have absorbed", got-serverHits)
	}
	st := pool.L1Stats()
	if st.Hits < 100 || st.Stores == 0 {
		t.Fatalf("L1Stats = %+v, want >= 100 hits and a store", st)
	}
}

// TestL1StalenessBound is the staleness regression: a value changed behind
// the client's back (the invalidation never reaches this pool — it is
// written straight into the store) must stop being served once the lease
// expires. This is the documented contract that bounds L1 staleness by the
// invalidation bus's BatchWindow.
func TestL1StalenessBound(t *testing.T) {
	const ttl = 25 * time.Millisecond
	store, pool := newL1PoolPair(t, 1024, ttl)
	pool.Set("k", []byte("old"), 0)
	if v, ok := pool.Get("k"); !ok || string(v) != "old" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// Out-of-band write: no pool op, so no local invalidation happens.
	store.Set("k", []byte("new"), 0)
	// Within the lease a stale read is permitted; past it, never.
	deadline := time.Now().Add(ttl)
	for time.Now().Before(deadline.Add(ttl)) {
		v, ok := pool.Get("k")
		if !ok {
			t.Fatalf("Get missed mid-test")
		}
		if string(v) == "new" {
			return // converged within the bound
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale %q served %v past the lease deadline", v, time.Since(deadline))
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never observed the new value")
}

// TestL1WriteOpsInvalidateImmediately: a write through the pool must not
// leave a lease-live stale entry behind — the next read re-earns the entry
// from the server, so it sees the write with no staleness window at all.
func TestL1WriteOpsInvalidateImmediately(t *testing.T) {
	_, pool := newL1PoolPair(t, 1024, time.Minute)
	pool.Set("k", []byte("v1"), 0)
	if v, ok := pool.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	pool.Set("k", []byte("v2"), 0)
	if v, ok := pool.Get("k"); !ok || string(v) != "v2" {
		t.Fatalf("Get after Set = %q, %v; stale near-cache entry survived a pool write", v, ok)
	}
	if !pool.Delete("k") {
		t.Fatal("Delete = false")
	}
	if v, ok := pool.Get("k"); ok {
		t.Fatalf("Get after Delete = %q, want miss; stale near-cache entry survived", v)
	}
	if st := pool.L1Stats(); st.Invalidations == 0 {
		t.Fatalf("L1Stats = %+v, want invalidations > 0", st)
	}
}

// TestL1ApplyBatchInvalidates: invalidation-bus flushes ride ApplyBatch
// through the same pool, so a batched delete must drop the near-cache entry
// in the same call.
func TestL1ApplyBatchInvalidates(t *testing.T) {
	_, pool := newL1PoolPair(t, 1024, time.Minute)
	pool.Set("k", []byte("v"), 0)
	if _, ok := pool.Get("k"); !ok {
		t.Fatal("Get missed")
	}
	res := pool.ApplyBatch([]kvcache.BatchOp{{Kind: kvcache.BatchDelete, Key: "k"}})
	if len(res) != 1 || !res[0].Found {
		t.Fatalf("ApplyBatch = %+v", res)
	}
	if v, ok := pool.Get("k"); ok {
		t.Fatalf("Get after batched delete = %q, want miss", v)
	}
}

// TestL1FlushAllOrphansEverything: FlushAll must take the near-cache with
// it, immediately.
func TestL1FlushAllOrphansEverything(t *testing.T) {
	_, pool := newL1PoolPair(t, 1024, time.Minute)
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%d", i)
		pool.Set(k, []byte("v"), 0)
		pool.Get(k)
	}
	pool.FlushAll()
	for i := 0; i < 16; i++ {
		if v, ok := pool.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d = %q after FlushAll, want miss", i, v)
		}
	}
}

// TestL1StaysWithinSizeBound: the near-cache evicts rather than grow past
// its configured entry budget.
func TestL1StaysWithinSizeBound(t *testing.T) {
	const entries = 64
	_, pool := newL1PoolPair(t, entries, time.Minute)
	for i := 0; i < entries*4; i++ {
		k := fmt.Sprintf("k%d", i)
		pool.Set(k, []byte("v"), 0)
		pool.Get(k)
	}
	st := pool.L1Stats()
	if st.Items > entries {
		t.Fatalf("L1 holds %d entries, budget %d", st.Items, entries)
	}
	if st.Evictions == 0 {
		t.Fatalf("L1Stats = %+v, want evictions > 0 after 4x overfill", st)
	}
}

// TestL1ServesLeaseLiveEntriesWithServerDown: the freshest locally known
// value beats a guaranteed miss, so a lease-live entry is served even after
// the node dies (and stops being served once the lease expires).
func TestL1ServesLeaseLiveEntriesWithServerDown(t *testing.T) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPoolWithConfig(PoolConfig{Addr: addr, MaxIdle: 2, L1Entries: 64, L1TTL: 200 * time.Millisecond})
	t.Cleanup(func() { _ = pool.Close() })
	pool.Set("k", []byte("v"), 0)
	if _, ok := pool.Get("k"); !ok {
		t.Fatal("Get missed")
	}
	_ = srv.Close()
	if v, ok := pool.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("lease-live Get with server down = %q, %v, want hit", v, ok)
	}
	time.Sleep(250 * time.Millisecond)
	if v, ok := pool.Get("k"); ok {
		t.Fatalf("Get = %q after lease expiry with server down, want miss", v)
	}
}

// TestL1Concurrent is the -race drill: readers, writers, batch flushes and
// epoch bumps hammering the same stripes.
func TestL1Concurrent(t *testing.T) {
	_, pool := newL1PoolPair(t, 256, time.Millisecond)
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		pool.Set(keys[i], []byte("v"), 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(g+i)%len(keys)]
				switch {
				case i%97 == 0:
					pool.FlushAll()
				case i%13 == 0:
					pool.Set(k, []byte("v"), 0)
				case i%7 == 0:
					pool.Delete(k)
				default:
					pool.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	pool.L1Stats() // exercise the aggregate read under no contention
}

// BenchmarkL1Lookup must stay at 0 allocs/op (CI-gated): the near-cache
// exists to make hot reads cheaper, so its hit path cannot pay the
// allocator.
func BenchmarkL1Lookup(b *testing.B) {
	l := newL1(1024, time.Hour)
	now := time.Now().UnixNano()
	l.store("celebrity:bookmarks", []byte("v"), now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := l.lookup("celebrity:bookmarks", now); !ok {
			b.Fatal("miss")
		}
	}
}
