package cacheproto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"testing"

	"cachegenie/internal/kvcache"
)

// The hot-path benchmarks drive the server's per-connection dispatch loop
// directly over in-memory readers, isolating protocol parsing + store work
// from socket syscalls. The acceptance target is ~0 allocs/op in steady
// state for get and (overwrite) set; CI runs these with -benchmem.

func benchConn(srv *Server) (*serverConn, *bytes.Reader, *bufio.Reader) {
	rd := bytes.NewReader(nil)
	br := bufio.NewReader(rd)
	bw := bufio.NewWriter(io.Discard)
	return srv.newServerConn(br, bw), rd, br
}

func runRequest(b *testing.B, c *serverConn, rd *bytes.Reader, br *bufio.Reader, req []byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(req)
		br.Reset(rd)
		if !c.serveOne() {
			b.Fatal("connection state died mid-benchmark")
		}
	}
}

func BenchmarkServerHotPathGet(b *testing.B) {
	store := kvcache.New(0)
	store.Set("bench-key", make([]byte, 256), 0)
	c, rd, br := benchConn(NewServer(store))
	runRequest(b, c, rd, br, []byte("get bench-key\r\n"))
}

func BenchmarkServerHotPathGets(b *testing.B) {
	store := kvcache.New(0)
	store.Set("bench-key", make([]byte, 256), 0)
	c, rd, br := benchConn(NewServer(store))
	runRequest(b, c, rd, br, []byte("gets bench-key\r\n"))
}

func BenchmarkServerHotPathGetMiss(b *testing.B) {
	c, rd, br := benchConn(NewServer(kvcache.New(0)))
	runRequest(b, c, rd, br, []byte("get absent-key\r\n"))
}

func BenchmarkServerHotPathSet(b *testing.B) {
	store := kvcache.New(1 << 24)
	c, rd, br := benchConn(NewServer(store))
	val := bytes.Repeat([]byte("v"), 256)
	req := append([]byte(fmt.Sprintf("set bench-key 0 0 %d\r\n", len(val))), val...)
	req = append(req, '\r', '\n')
	// Prime once so the timed loop measures the overwrite path.
	rd.Reset(req)
	br.Reset(rd)
	if !c.serveOne() {
		b.Fatal("priming set failed")
	}
	runRequest(b, c, rd, br, req)
}

func BenchmarkServerHotPathDelete(b *testing.B) {
	// Delete of an absent key: measures parse + shard lookup without the
	// (allocating) insert needed to make every delete hit.
	c, rd, br := benchConn(NewServer(kvcache.New(0)))
	runRequest(b, c, rd, br, []byte("delete absent-key\r\n"))
}

func BenchmarkServerHotPathIncr(b *testing.B) {
	store := kvcache.New(0)
	store.Set("ctr", []byte("0"), 0)
	c, rd, br := benchConn(NewServer(store))
	runRequest(b, c, rd, br, []byte("incr ctr 1\r\n"))
}

func BenchmarkServerHotPathMop(b *testing.B) {
	store := kvcache.New(0)
	store.Set("ctr", []byte("0"), 0)
	store.Set("seed", bytes.Repeat([]byte("v"), 64), 0)
	c, rd, br := benchConn(NewServer(store))
	req := []byte("mop 3\r\nset seed 0 0 64\r\n" + string(bytes.Repeat([]byte("v"), 64)) + "\r\nincr ctr 1\r\ndelete absent\r\n")
	runRequest(b, c, rd, br, req)
}

// BenchmarkLoopbackGet measures a full client->server->client round trip on
// loopback TCP. The remaining allocations are the fetched value returned to
// the caller (it must survive the next op) — the request/response machinery
// itself is allocation-free on both ends.
func BenchmarkLoopbackGet(b *testing.B) {
	store := kvcache.New(0)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	cli.Set("bench-key", bytes.Repeat([]byte("v"), 256), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cli.Get("bench-key"); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkLoopbackSet is the loopback round trip for the write path; the
// client builds the request in its reusable buffer, the server stores via
// the overwrite path, and neither end allocates in steady state.
func BenchmarkLoopbackSet(b *testing.B) {
	store := kvcache.New(1 << 24)
	srv := NewServer(store)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	val := bytes.Repeat([]byte("v"), 256)
	cli.Set("bench-key", val, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.set("bench-key", val, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSplitFieldsAndAtoi(t *testing.T) {
	fields := splitFields([]byte("  set   key\t0  91 "), nil)
	want := []string{"set", "key", "0", "91"}
	if len(fields) != len(want) {
		t.Fatalf("fields = %q", fields)
	}
	for i, w := range want {
		if string(fields[i]) != w {
			t.Fatalf("field %d = %q, want %q", i, fields[i], w)
		}
	}
	if fs := splitFields([]byte("   "), nil); len(fs) != 0 {
		t.Fatalf("blank line split = %q", fs)
	}
	cases := map[string]struct {
		n  int64
		ok bool
	}{
		"0": {0, true}, "42": {42, true}, "-7": {-7, true},
		"": {0, false}, "-": {0, false}, "12x": {0, false},
		"9223372036854775807":  {1<<63 - 1, true},
		"9223372036854775808":  {0, false}, // one past MaxInt64
		"99999999999999999999": {0, false}, // overflow
		// Wraps past uint64 back into range: must be rejected, not accepted
		// as 0 — a byte count of 0 here would desync the stream framing.
		"18446744073709551616": {0, false},
	}
	for in, want := range cases {
		n, ok := atoi([]byte(in))
		if ok != want.ok || (ok && n != want.n) {
			t.Fatalf("atoi(%q) = %d,%v want %d,%v", in, n, ok, want.n, want.ok)
		}
	}
	if n, ok := atou([]byte("18446744073709551615")); !ok || n != 1<<64-1 {
		t.Fatalf("atou max = %d, %v", n, ok)
	}
	if _, ok := atou([]byte("18446744073709551616")); ok {
		t.Fatal("atou overflow accepted")
	}
	if _, ok := atou([]byte("30000000000000000005")); ok {
		t.Fatal("atou wrap-into-range accepted")
	}
	if _, ok := atou([]byte("")); ok {
		t.Fatal("atou empty accepted")
	}
}
