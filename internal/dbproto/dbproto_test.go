package dbproto

import (
	"strings"
	"sync"
	"testing"

	"cachegenie/internal/sqldb"
)

func newPair(t *testing.T) (*sqldb.DB, *Client) {
	t.Helper()
	db := sqldb.MustOpen(sqldb.Config{})
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })
	return db, cli
}

func TestExecQueryOverWire(t *testing.T) {
	_, cli := newPair(t)
	if _, err := cli.Exec("CREATE TABLE users (name TEXT, age INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("INSERT INTO users (name, age) VALUES ($1, $2)",
		sqldb.Str("alice"), sqldb.I64(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 1 {
		t.Fatalf("LastInsertID = %d", res.LastInsertID)
	}
	rs, err := cli.Query("SELECT name, age FROM users WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "alice" || rs.Rows[0][1].I != 30 {
		t.Fatalf("rows = %+v", rs.Rows)
	}
}

func TestErrorsCrossTheWire(t *testing.T) {
	_, cli := newPair(t)
	_, err := cli.Query("SELECT * FROM missing")
	if err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("err = %v", err)
	}
	// The connection must still be usable after an error.
	if _, err := cli.Exec("CREATE TABLE t (v INT)"); err != nil {
		t.Fatal(err)
	}
}

func TestWireTransaction(t *testing.T) {
	_, cli := newPair(t)
	if _, err := cli.Exec("CREATE TABLE t (v INT)"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("INSERT INTO t (v) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs, err := cli.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 0 {
		t.Fatalf("count after rollback = %d", rs.Rows[0][0].I)
	}

	if err := cli.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("INSERT INTO t (v) VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Commit(); err != nil {
		t.Fatal(err)
	}
	rs, _ = cli.Query("SELECT COUNT(*) FROM t")
	if rs.Rows[0][0].I != 1 {
		t.Fatalf("count after commit = %d", rs.Rows[0][0].I)
	}
}

func TestDoubleBeginRejected(t *testing.T) {
	_, cli := newPair(t)
	if err := cli.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Begin(); err == nil {
		t.Fatal("double begin accepted")
	}
	if err := cli.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionDropRollsBack(t *testing.T) {
	db, cli := newPair(t)
	if _, err := cli.Exec("CREATE TABLE t (v INT)"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("INSERT INTO t (v) VALUES (9)"); err != nil {
		t.Fatal(err)
	}
	_ = cli.Close() // drop mid-transaction

	// The server must roll the open transaction back and release locks so
	// new clients can read the table.
	rs, err := db.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 0 {
		t.Fatalf("count = %d after dropped connection, want 0", rs.Rows[0][0].I)
	}
}

func TestManyClientsConcurrently(t *testing.T) {
	db, _ := newPair(t)
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := db.Exec("CREATE TABLE c (v INT)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for i := 0; i < 30; i++ {
				if _, err := cli.Exec("INSERT INTO c (v) VALUES ($1)", sqldb.I64(int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rs, _ := db.Query("SELECT COUNT(*) FROM c")
	if rs.Rows[0][0].I != 180 {
		t.Fatalf("count = %d, want 180", rs.Rows[0][0].I)
	}
}

func TestNullAndTypedValuesOverWire(t *testing.T) {
	_, cli := newPair(t)
	if _, err := cli.Exec("CREATE TABLE t (a INT, b TEXT, c BOOL, d FLOAT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("INSERT INTO t (a, b, c, d) VALUES ($1, $2, $3, $4)",
		sqldb.NullOf(sqldb.TypeInt), sqldb.Str("x"), sqldb.Bool(true), sqldb.F64(2.5)); err != nil {
		t.Fatal(err)
	}
	rs, err := cli.Query("SELECT a, b, c, d FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	row := rs.Rows[0]
	if !row[0].Null || row[1].S != "x" || !row[2].AsBool() || row[3].F != 2.5 {
		t.Fatalf("row = %+v", row)
	}
}
