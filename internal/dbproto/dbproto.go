// Package dbproto implements a wire protocol for the sqldb engine so it can
// run as a standalone server (cmd/geniedb), taking the place of the paper's
// networked PostgreSQL instance. Requests and responses are gob-encoded over
// a TCP connection; each connection owns at most one open transaction, like
// a Postgres session.
package dbproto

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cachegenie/internal/sqldb"
)

// Op is a request operation.
type Op string

// Request operations.
const (
	OpExec     Op = "exec"
	OpQuery    Op = "query"
	OpBegin    Op = "begin"
	OpCommit   Op = "commit"
	OpRollback Op = "rollback"
	// OpEpoch returns the DB's recovery epoch; OpRecovery additionally
	// returns what the last Open found on disk. The workload stack polls
	// the epoch and flushes the cache tier when it changes.
	OpEpoch    Op = "epoch"
	OpRecovery Op = "recovery"
)

// Request is one client request.
type Request struct {
	Op   Op
	SQL  string
	Args []sqldb.Value
}

// Response is one server reply.
type Response struct {
	Err     string
	Result  sqldb.Result
	Columns []string
	Rows    []sqldb.Row
	// Epoch/Recovery answer OpEpoch and OpRecovery.
	Epoch    uint64
	Recovery sqldb.RecoveryInfo
}

// defaultIOTimeout is the per-request I/O budget a new Server starts with;
// see Server.IOTimeout.
const defaultIOTimeout = 30 * time.Second

// Server exposes a DB over TCP.
type Server struct {
	db *sqldb.DB

	// IOTimeout bounds one in-flight request: once its first byte has
	// arrived, the request decode, execution (including a group-commit
	// fsync wait), and response encode must complete within it or the
	// connection is dropped. It does NOT bound the idle wait between
	// requests — sessions may sit quiet indefinitely. <= 0 disables the
	// deadline. Set before Listen.
	IOTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	acceptWG sync.WaitGroup
}

// NewServer wraps db.
func NewServer(db *sqldb.DB) *Server {
	return &Server{db: db, conns: make(map[net.Conn]struct{}), IOTimeout: defaultIOTimeout}
}

// Listen binds addr and starts serving; returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go func() {
		defer s.acceptWG.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				_ = conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.acceptWG.Wait()
	s.wg.Wait()
	return err
}

// armDeadline starts the per-request I/O clock on conn; a peer that stalls
// mid-request (half-sent gob, unread response) cannot pin the serving
// goroutine forever.
func armDeadline(conn net.Conn, d time.Duration) {
	if d > 0 {
		_ = conn.SetDeadline(time.Now().Add(d))
	}
}

// clearDeadline returns conn to deadline-free idling between requests.
func clearDeadline(conn net.Conn) {
	_ = conn.SetDeadline(time.Time{})
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var tx *sqldb.Txn
	defer func() {
		if tx != nil {
			_ = tx.Rollback()
		}
	}()
	for {
		// Deadline-free idle wait for the request's first byte, then the
		// whole request round trip runs against IOTimeout.
		clearDeadline(conn)
		if _, err := br.Peek(1); err != nil {
			return
		}
		armDeadline(conn, s.IOTimeout)
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(&tx, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(tx **sqldb.Txn, req Request) Response {
	fail := func(err error) Response { return Response{Err: err.Error()} }
	switch req.Op {
	case OpBegin:
		if *tx != nil {
			return fail(errors.New("dbproto: transaction already open"))
		}
		*tx = s.db.Begin()
		return Response{}
	case OpCommit:
		if *tx == nil {
			return fail(errors.New("dbproto: no open transaction"))
		}
		err := (*tx).Commit()
		*tx = nil
		if err != nil {
			return fail(err)
		}
		return Response{}
	case OpRollback:
		if *tx == nil {
			return fail(errors.New("dbproto: no open transaction"))
		}
		err := (*tx).Rollback()
		*tx = nil
		if err != nil {
			return fail(err)
		}
		return Response{}
	case OpExec:
		var res sqldb.Result
		var err error
		if *tx != nil {
			res, err = (*tx).Exec(req.SQL, req.Args...)
		} else {
			res, err = s.db.Exec(req.SQL, req.Args...)
		}
		if err != nil {
			return fail(err)
		}
		return Response{Result: res}
	case OpQuery:
		var rs *sqldb.ResultSet
		var err error
		if *tx != nil {
			rs, err = (*tx).Query(req.SQL, req.Args...)
		} else {
			rs, err = s.db.Query(req.SQL, req.Args...)
		}
		if err != nil {
			return fail(err)
		}
		return Response{Columns: rs.Columns, Rows: rs.Rows}
	case OpEpoch:
		return Response{Epoch: s.db.Epoch()}
	case OpRecovery:
		return Response{Epoch: s.db.Epoch(), Recovery: s.db.Recovery()}
	}
	return fail(fmt.Errorf("dbproto: unknown op %q", req.Op))
}

// Client is a connection to a DB server. It is safe for concurrent use;
// requests serialize on the connection. Note that transactions
// (Begin/Commit) are per-connection state, so concurrent users of one Client
// must not interleave transactions — open one Client per worker instead.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	opTimeout time.Duration
}

// Dial connects to a DB server with no per-operation timeout.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 0) }

// DialTimeout connects to a DB server; opTimeout bounds the dial and each
// subsequent request round trip (0 disables both).
func DialTimeout(addr string, opTimeout time.Duration) (*Client, error) {
	var conn net.Conn
	var err error
	if opTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, opTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("dbproto: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), opTimeout: opTimeout}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// armOpDeadline starts the per-operation clock. Caller holds c.mu.
func (c *Client) armOpDeadline() {
	if c.opTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opTimeout))
	}
}

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armOpDeadline()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if resp.Err != "" {
		return Response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Exec runs a mutating statement.
func (c *Client) Exec(sql string, args ...sqldb.Value) (sqldb.Result, error) {
	resp, err := c.roundTrip(Request{Op: OpExec, SQL: sql, Args: args})
	if err != nil {
		return sqldb.Result{}, err
	}
	return resp.Result, nil
}

// Query runs a SELECT.
func (c *Client) Query(sql string, args ...sqldb.Value) (*sqldb.ResultSet, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	return &sqldb.ResultSet{Columns: resp.Columns, Rows: resp.Rows}, nil
}

// Begin opens a transaction on this connection.
func (c *Client) Begin() error {
	_, err := c.roundTrip(Request{Op: OpBegin})
	return err
}

// Commit commits the connection's transaction.
func (c *Client) Commit() error {
	_, err := c.roundTrip(Request{Op: OpCommit})
	return err
}

// Rollback aborts the connection's transaction.
func (c *Client) Rollback() error {
	_, err := c.roundTrip(Request{Op: OpRollback})
	return err
}

// Epoch returns the server database's recovery epoch. The epoch advances
// exactly when an Open recovers from an unclean shutdown, so a cache tier
// that sees it move knows trigger effects of discarded transactions may be
// stranded in cache and must flush.
func (c *Client) Epoch() (uint64, error) {
	resp, err := c.roundTrip(Request{Op: OpEpoch})
	if err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// Recovery returns what the server database's last Open found on disk.
func (c *Client) Recovery() (sqldb.RecoveryInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpRecovery})
	if err != nil {
		return sqldb.RecoveryInfo{}, err
	}
	return resp.Recovery, nil
}
