package sqldb

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := MustOpen(Config{})
	mustExec(b, db, "CREATE TABLE bench (k INT NOT NULL, v TEXT)")
	mustExec(b, db, "CREATE INDEX idx_bench_k ON bench (k)")
	for i := 0; i < rows; i++ {
		mustExec(b, db, "INSERT INTO bench (k, v) VALUES ($1, $2)",
			I64(int64(i%100)), Str(fmt.Sprintf("value-%d", i)))
	}
	return db
}

func BenchmarkEnginePointSelect(b *testing.B) {
	db := benchDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT v FROM bench WHERE id = $1", I64(int64(i%5000+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineIndexSelect(b *testing.B) {
	db := benchDB(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT v FROM bench WHERE k = $1", I64(int64(i%100))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineInsert(b *testing.B) {
	db := benchDB(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO bench (k, v) VALUES ($1, $2)",
			I64(int64(i)), Str("row")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineInsertWithTrigger(b *testing.B) {
	db := benchDB(b, 0)
	if err := db.CreateTrigger(Trigger{
		Name: "noop", Table: "bench", Op: TrigInsert,
		Fn: func(q Queryer, ev TriggerEvent) error { return nil },
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO bench (k, v) VALUES ($1, $2)",
			I64(int64(i)), Str("row")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineUpdateIndexed(b *testing.B) {
	db := benchDB(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("UPDATE bench SET v = $1 WHERE k = $2",
			Str("updated"), I64(int64(i%100))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineJoin(b *testing.B) {
	db := MustOpen(Config{})
	mustExec(b, db, "CREATE TABLE l (r_id INT NOT NULL)")
	mustExec(b, db, "CREATE TABLE r (name TEXT)")
	mustExec(b, db, "CREATE INDEX idx_l_r ON l (r_id)")
	for i := 1; i <= 200; i++ {
		mustExec(b, db, "INSERT INTO r (name) VALUES ($1)", Str(fmt.Sprintf("n%d", i)))
		mustExec(b, db, "INSERT INTO l (r_id) VALUES ($1)", I64(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(
			"SELECT r.name FROM l JOIN r ON l.r_id = r.id WHERE l.id = $1",
			I64(int64(i%200+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSelect(b *testing.B) {
	db := benchDB(b, 10)
	_ = db
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT id, k, v FROM bench WHERE k = 1 ORDER BY id DESC LIMIT 5"); err != nil {
			b.Fatal(err)
		}
	}
}
