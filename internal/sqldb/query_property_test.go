package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestOrderByLimitAgainstReference checks ORDER BY + LIMIT + OFFSET against
// an in-memory reference sort over randomized data, including duplicate
// sort keys and NULLs.
func TestOrderByLimitAgainstReference(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE s (grp INT NOT NULL, score INT, name TEXT)")
	mustExec(t, db, "CREATE INDEX idx_s_grp ON s (grp)")
	rng := rand.New(rand.NewSource(17))
	type row struct {
		id    int64
		grp   int64
		score Value
		name  string
	}
	var rows []row
	for i := 0; i < 300; i++ {
		grp := int64(rng.Intn(5))
		var score Value
		if rng.Intn(10) == 0 {
			score = NullOf(TypeInt)
			mustExec(t, db, "INSERT INTO s (grp, score, name) VALUES ($1, NULL, $2)",
				I64(grp), Str(fmt.Sprintf("n%d", i)))
		} else {
			score = I64(int64(rng.Intn(50)))
			mustExec(t, db, "INSERT INTO s (grp, score, name) VALUES ($1, $2, $3)",
				I64(grp), score, Str(fmt.Sprintf("n%d", i)))
		}
		rows = append(rows, row{id: int64(i + 1), grp: grp, score: score, name: fmt.Sprintf("n%d", i)})
	}

	for _, tc := range []struct {
		desc   bool
		limit  int
		offset int
	}{
		{false, 10, 0}, {true, 10, 0}, {true, 7, 3}, {false, 1000, 0}, {true, 0, 0},
	} {
		for grp := int64(0); grp < 5; grp++ {
			dir := ""
			if tc.desc {
				dir = " DESC"
			}
			sql := fmt.Sprintf(
				"SELECT id FROM s WHERE grp = $1 ORDER BY score%s, id LIMIT %d OFFSET %d",
				dir, tc.limit, tc.offset)
			rs := mustQuery(t, db, sql, I64(grp))

			// Reference: filter, stable sort by (score dir, id asc).
			var want []row
			for _, r := range rows {
				if r.grp == grp {
					want = append(want, r)
				}
			}
			sort.SliceStable(want, func(a, b int) bool {
				c := Compare(want[a].score, want[b].score)
				if c != 0 {
					if tc.desc {
						return c > 0
					}
					return c < 0
				}
				return want[a].id < want[b].id
			})
			if tc.offset < len(want) {
				want = want[tc.offset:]
			} else {
				want = nil
			}
			if tc.limit < len(want) {
				want = want[:tc.limit]
			}
			if len(rs.Rows) != len(want) {
				t.Fatalf("%s grp=%d: got %d rows, want %d", sql, grp, len(rs.Rows), len(want))
			}
			for i := range want {
				if rs.Rows[i][0].I != want[i].id {
					t.Fatalf("%s grp=%d row %d: got id %d, want %d",
						sql, grp, i, rs.Rows[i][0].I, want[i].id)
				}
			}
		}
	}
}

// TestUpdateMovesIndexEntries verifies that updating an indexed column
// relocates the index entry (regression guard for the index-maintenance
// path feature-query triggers depend on).
func TestUpdateMovesIndexEntries(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE m (k INT NOT NULL, v TEXT)")
	mustExec(t, db, "CREATE INDEX idx_m_k ON m (k)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, "INSERT INTO m (k, v) VALUES ($1, $2)", I64(int64(i%2)), Str(fmt.Sprintf("r%d", i)))
	}
	res := mustExec(t, db, "UPDATE m SET k = 2 WHERE k = 0")
	if res.RowsAffected != 10 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	for k, want := range map[int]int64{0: 0, 1: 10, 2: 10} {
		rs := mustQuery(t, db, "SELECT COUNT(*) FROM m WHERE k = $1", I64(int64(k)))
		if rs.Rows[0][0].I != want {
			t.Fatalf("k=%d count = %d, want %d", k, rs.Rows[0][0].I, want)
		}
	}
}

// TestInPredicateWithParams mixes literal and parameter IN members.
func TestInPredicateWithParams(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE p (v INT)")
	for i := 1; i <= 10; i++ {
		mustExec(t, db, "INSERT INTO p (v) VALUES ($1)", I64(int64(i)))
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM p WHERE v IN ($1, 5, $2)", I64(2), I64(8))
	if rs.Rows[0][0].I != 3 {
		t.Fatalf("count = %d", rs.Rows[0][0].I)
	}
}

// TestTxnSequentialStatements runs multi-statement transactions with
// interleaved reads and verifies atomicity of the whole group.
func TestTxnSequentialStatements(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE acct (owner TEXT NOT NULL, balance INT NOT NULL)")
	mustExec(t, db, "INSERT INTO acct (owner, balance) VALUES ('a', 100)")
	mustExec(t, db, "INSERT INTO acct (owner, balance) VALUES ('b', 0)")

	transfer := func(amount int64) error {
		tx := db.Begin()
		defer func() { _ = tx.Rollback() }()
		if _, err := tx.Exec("UPDATE acct SET balance = balance - $1 WHERE owner = 'a'", I64(amount)); err != nil {
			return err
		}
		rs, err := tx.Query("SELECT balance FROM acct WHERE owner = 'a'")
		if err != nil {
			return err
		}
		if rs.Rows[0][0].I < 0 {
			return fmt.Errorf("insufficient funds")
		}
		if _, err := tx.Exec("UPDATE acct SET balance = balance + $1 WHERE owner = 'b'", I64(amount)); err != nil {
			return err
		}
		return tx.Commit()
	}
	if err := transfer(60); err != nil {
		t.Fatal(err)
	}
	if err := transfer(60); err == nil {
		t.Fatal("overdraft transfer succeeded")
	}
	// Failed transfer must have rolled back entirely.
	total := int64(0)
	for _, owner := range []string{"a", "b"} {
		rs := mustQuery(t, db, "SELECT balance FROM acct WHERE owner = $1", Str(owner))
		total += rs.Rows[0][0].I
	}
	if total != 100 {
		t.Fatalf("money not conserved: total = %d", total)
	}
	rs := mustQuery(t, db, "SELECT balance FROM acct WHERE owner = 'b'")
	if rs.Rows[0][0].I != 60 {
		t.Fatalf("b = %d, want 60", rs.Rows[0][0].I)
	}
}
