package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cachegenie/internal/wal"
)

// ErrLockTimeout is returned when a lock cannot be acquired before the
// engine's lock timeout; callers should treat it as a deadlock victim signal
// and retry the transaction (timeout-based deadlock detection, as the paper
// proposes for its distributed variant, §3.3).
var ErrLockTimeout = errors.New("sqldb: lock wait timeout (possible deadlock)")

// ErrTxnDone is returned when using a committed or rolled-back transaction.
var ErrTxnDone = errors.New("sqldb: transaction already finished")

type lockMode int

const (
	lockNone lockMode = iota
	lockShared
	lockExclusive
)

// tableLock is a reader-writer lock with owner reentrancy, shared-to-
// exclusive upgrade, and timeout. Owners are transactions.
type tableLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers map[*Txn]int
	writer  *Txn
}

func newTableLock() *tableLock {
	l := &tableLock{readers: make(map[*Txn]int)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// tryGrant attempts to grant mode to owner; caller holds l.mu.
func (l *tableLock) tryGrant(owner *Txn, mode lockMode) bool {
	switch mode {
	case lockShared:
		if l.writer == nil || l.writer == owner {
			l.readers[owner]++
			return true
		}
	case lockExclusive:
		if l.writer == owner {
			return true
		}
		othersReading := false
		for r := range l.readers {
			if r != owner {
				othersReading = true
				break
			}
		}
		if l.writer == nil && !othersReading {
			// Upgrade: drop our shared holds; the exclusive hold subsumes
			// them until release.
			delete(l.readers, owner)
			l.writer = owner
			return true
		}
	}
	return false
}

// acquire blocks until mode is granted to owner or timeout elapses.
func (l *tableLock) acquire(owner *Txn, mode lockMode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.tryGrant(owner, mode) {
			return nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return ErrLockTimeout
		}
		timer := time.AfterFunc(remaining, func() {
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		})
		l.cond.Wait()
		timer.Stop()
	}
}

// release drops all of owner's holds.
func (l *tableLock) release(owner *Txn) {
	l.mu.Lock()
	if l.writer == owner {
		l.writer = nil
	}
	delete(l.readers, owner)
	l.cond.Broadcast()
	l.mu.Unlock()
}

// undoRec is one entry in a transaction's undo log.
type undoRec struct {
	tbl *table
	op  TriggerOp
	old Row // valid for update, delete
	new Row // valid for insert, update
}

// Txn is a database transaction. It implements strict two-phase locking at
// table granularity: locks accumulate during the transaction and are all
// released at Commit or Rollback. A Txn must be used from a single goroutine.
type Txn struct {
	db    *DB
	id    int64
	locks map[string]lockMode
	undo  []undoRec
	redo  []redoRec
	done  bool
	// depth guards against trigger recursion: triggers run inside a
	// statement and may issue reads, but their writes do not re-fire
	// triggers beyond maxTriggerDepth.
	depth int
}

// ID returns the transaction id.
func (tx *Txn) ID() int64 { return tx.id }

// lockTable acquires (or re-acquires) a lock on the named table.
func (tx *Txn) lockTable(name string, mode lockMode) error {
	if tx.done {
		return ErrTxnDone
	}
	held := tx.locks[name]
	if held >= mode {
		return nil
	}
	l := tx.db.lockFor(name)
	if err := l.acquire(tx, mode, tx.db.lockTimeout); err != nil {
		return fmt.Errorf("%w (table %s, txn %d)", err, name, tx.id)
	}
	tx.locks[name] = mode
	return nil
}

// Commit makes the transaction's effects durable and releases its locks.
// On a durable DB the redo records are appended to the WAL and the call
// blocks until the group-commit writer has fsynced them; a durability
// failure rolls the in-memory effects back so memory never diverges from
// the log prefix.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	if w := tx.db.wal; w != nil && len(tx.redo) > 0 {
		recs := make([]wal.Record, len(tx.redo))
		for i, r := range tx.redo {
			recs[i] = r.encode()
		}
		if err := w.Commit(tx.id, recs); err != nil {
			rbErr := tx.Rollback()
			if rbErr != nil {
				return fmt.Errorf("sqldb: commit txn %d: %v (rollback also failed: %v)", tx.id, err, rbErr)
			}
			return fmt.Errorf("sqldb: commit txn %d: %w", tx.id, err)
		}
	}
	tx.finish()
	return nil
}

// Rollback undoes every change made by the transaction (without re-firing
// triggers) and releases its locks. Rolling back a finished transaction is a
// no-op, so `defer tx.Rollback()` is safe.
func (tx *Txn) Rollback() error {
	if tx.done {
		return nil
	}
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		var err error
		switch u.op {
		case TrigInsert:
			err = u.tbl.deleteRaw(u.new)
		case TrigUpdate:
			_, err = u.tbl.updateRaw(u.new, u.old)
		case TrigDelete:
			_, err = u.tbl.insertRaw(u.old)
		}
		if err != nil {
			// Undo failures indicate corruption; surface loudly.
			tx.finish()
			return fmt.Errorf("sqldb: rollback of txn %d failed: %v", tx.id, err)
		}
	}
	tx.finish()
	return nil
}

func (tx *Txn) finish() {
	for name := range tx.locks {
		tx.db.lockFor(name).release(tx)
	}
	tx.locks = map[string]lockMode{}
	tx.undo = nil
	tx.redo = nil
	tx.done = true
}
