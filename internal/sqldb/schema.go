package sqldb

import (
	"fmt"
	"strings"

	"cachegenie/internal/sqlparse"
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// Schema describes a table: its columns and primary key. Every table has an
// integer primary key (Django-style implicit `id` works out of the box); the
// engine auto-assigns ascending IDs when an insert leaves the PK NULL or 0.
type Schema struct {
	Table   string
	Columns []Column
	PKIndex int // position of the primary-key column
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PKName returns the primary-key column name.
func (s *Schema) PKName() string { return s.Columns[s.PKIndex].Name }

// String renders the schema as CREATE TABLE SQL.
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		p := c.Name + " " + c.Type.String()
		if i == s.PKIndex {
			p += " PRIMARY KEY"
		}
		if c.NotNull {
			p += " NOT NULL"
		}
		parts[i] = p
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", s.Table, strings.Join(parts, ", "))
}

// typeFromSQL maps a parsed SQL type name to an engine Type.
func typeFromSQL(sqlType string) (Type, error) {
	switch sqlType {
	case "INT", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE":
		return TypeFloat, nil
	case "TEXT", "VARCHAR":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "TIMESTAMP", "DATE":
		return TypeTime, nil
	}
	return 0, fmt.Errorf("sqldb: unsupported SQL type %q", sqlType)
}

// schemaFromAST builds a Schema from a parsed CREATE TABLE.
func schemaFromAST(ct *sqlparse.CreateTable) (*Schema, error) {
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("sqldb: table %s has no columns", ct.Table)
	}
	s := &Schema{Table: ct.Table, PKIndex: -1}
	for i, cd := range ct.Columns {
		t, err := typeFromSQL(cd.Type)
		if err != nil {
			return nil, err
		}
		if cd.PrimaryKey {
			if s.PKIndex >= 0 {
				return nil, fmt.Errorf("sqldb: table %s has two primary keys", ct.Table)
			}
			if t != TypeInt {
				return nil, fmt.Errorf("sqldb: primary key %s.%s must be INT", ct.Table, cd.Name)
			}
			s.PKIndex = i
		}
		s.Columns = append(s.Columns, Column{Name: cd.Name, Type: t, NotNull: cd.NotNull})
	}
	if s.PKIndex < 0 {
		// Django-style implicit id column, prepended.
		if s.ColIndex("id") >= 0 {
			return nil, fmt.Errorf("sqldb: table %s has an id column that is not the primary key", ct.Table)
		}
		s.Columns = append([]Column{{Name: "id", Type: TypeInt, NotNull: true}}, s.Columns...)
		s.PKIndex = 0
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if seen[c.Name] {
			return nil, fmt.Errorf("sqldb: table %s has duplicate column %s", ct.Table, c.Name)
		}
		seen[c.Name] = true
	}
	return s, nil
}
