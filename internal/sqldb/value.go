// Package sqldb implements the relational database engine that plays the
// role of PostgreSQL in the paper's stack: typed tables stored in slotted
// pages behind a buffer pool, B+tree secondary indexes, a planner/executor
// for the SQL subset in package sqlparse, table-granularity two-phase
// locking with rollback, and — centrally for CacheGenie — synchronous
// row-level AFTER triggers for INSERT, UPDATE and DELETE.
package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"time"
)

// Type enumerates column types.
type Type int

// Column types.
const (
	TypeInt Type = iota + 1
	TypeFloat
	TypeText
	TypeBool
	TypeTime
)

var typeNames = map[Type]string{
	TypeInt: "INT", TypeFloat: "FLOAT", TypeText: "TEXT",
	TypeBool: "BOOL", TypeTime: "TIMESTAMP",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a single typed SQL value. The zero Value is NULL of unknown type.
type Value struct {
	Type Type
	Null bool
	// I holds ints, bools (0/1) and times (microseconds since the Unix
	// epoch); F holds floats; S holds text.
	I int64
	F float64
	S string
}

// I64 makes an INT value.
func I64(v int64) Value { return Value{Type: TypeInt, I: v} }

// F64 makes a FLOAT value.
func F64(v float64) Value { return Value{Type: TypeFloat, F: v} }

// Str makes a TEXT value.
func Str(s string) Value { return Value{Type: TypeText, S: s} }

// Bool makes a BOOL value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{Type: TypeBool, I: i}
}

// Time makes a TIMESTAMP value (microsecond precision).
func Time(t time.Time) Value { return Value{Type: TypeTime, I: t.UnixMicro()} }

// NullOf makes a NULL of the given type.
func NullOf(t Type) Value { return Value{Type: t, Null: true} }

// AsTime converts a TIMESTAMP value back to time.Time.
func (v Value) AsTime() time.Time { return time.UnixMicro(v.I).UTC() }

// AsBool reports the value as a boolean.
func (v Value) AsBool() bool { return v.I != 0 }

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.Type == TypeInt || v.Type == TypeFloat }

// String implements fmt.Stringer for debugging and result rendering.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case TypeTime:
		return v.AsTime().Format(time.RFC3339Nano)
	}
	return "<invalid>"
}

// Compare orders a against b: -1, 0, or +1. NULL sorts before everything.
// INT and FLOAT compare numerically with each other; all other cross-type
// comparisons order by type id (they should not occur in well-typed plans).
func Compare(a, b Value) int {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0
		case a.Null:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.numeric(), b.numeric()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Type != b.Type {
		if a.Type < b.Type {
			return -1
		}
		return 1
	}
	switch a.Type {
	case TypeText:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default: // TypeBool, TypeTime (and TypeInt handled above)
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
}

func (v Value) numeric() float64 {
	if v.Type == TypeFloat {
		return v.F
	}
	return float64(v.I)
}

// Equal reports value equality under Compare semantics, except that NULL is
// never equal to anything (SQL three-valued logic collapsed to false).
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	return Compare(a, b) == 0
}

// EncodeKey appends an order-preserving encoding of v to dst, so that
// bytes.Compare over encodings matches Compare over values (within one
// column type). Used for B+tree index keys.
func EncodeKey(dst []byte, v Value) []byte {
	if v.Null {
		return append(dst, 0x00)
	}
	dst = append(dst, 0x01)
	switch v.Type {
	case TypeInt, TypeBool, TypeTime:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.I)^(1<<63)) // flip sign bit
		return append(dst, buf[:]...)
	case TypeFloat:
		bits := math.Float64bits(v.F)
		if v.F >= 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case TypeText:
		// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x01 so shorter
		// strings sort before their extensions.
		for i := 0; i < len(v.S); i++ {
			if v.S[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, v.S[i])
			}
		}
		return append(dst, 0x00, 0x01)
	}
	panic(fmt.Sprintf("sqldb: EncodeKey of invalid value type %v", v.Type))
}

// Row is one table row; column order matches the table schema.
type Row []Value

// EncodeRow appends a compact binary encoding of r to dst. CacheGenie uses
// it to store raw query results in the cache (the paper caches raw rows, not
// ORM objects, §3.1).
func EncodeRow(dst []byte, r Row) []byte { return encodeRow(dst, r) }

// DecodeRow parses an EncodeRow payload.
func DecodeRow(b []byte) (Row, error) { return decodeRow(b) }

// Clone returns a deep-enough copy (Values are value types).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// encodeRow serializes a row for heap storage.
func encodeRow(dst []byte, r Row) []byte {
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(r)))
	dst = append(dst, n4[:]...)
	for _, v := range r {
		dst = append(dst, byte(v.Type))
		if v.Null {
			dst = append(dst, 1)
			continue
		}
		dst = append(dst, 0)
		switch v.Type {
		case TypeInt, TypeBool, TypeTime:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v.I))
			dst = append(dst, b[:]...)
		case TypeFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
			dst = append(dst, b[:]...)
		case TypeText:
			binary.LittleEndian.PutUint32(n4[:], uint32(len(v.S)))
			dst = append(dst, n4[:]...)
			dst = append(dst, v.S...)
		default:
			panic(fmt.Sprintf("sqldb: encodeRow invalid type %v", v.Type))
		}
	}
	return dst
}

// decodeRow deserializes a heap record.
func decodeRow(b []byte) (Row, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("sqldb: short row record (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	row := make(Row, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("sqldb: truncated row value %d", i)
		}
		t := Type(b[0])
		null := b[1] == 1
		b = b[2:]
		if null {
			row = append(row, NullOf(t))
			continue
		}
		switch t {
		case TypeInt, TypeBool, TypeTime:
			if len(b) < 8 {
				return nil, fmt.Errorf("sqldb: truncated int value %d", i)
			}
			row = append(row, Value{Type: t, I: int64(binary.LittleEndian.Uint64(b[:8]))})
			b = b[8:]
		case TypeFloat:
			if len(b) < 8 {
				return nil, fmt.Errorf("sqldb: truncated float value %d", i)
			}
			row = append(row, Value{Type: t, F: math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))})
			b = b[8:]
		case TypeText:
			if len(b) < 4 {
				return nil, fmt.Errorf("sqldb: truncated text length %d", i)
			}
			l := binary.LittleEndian.Uint32(b[:4])
			b = b[4:]
			if len(b) < int(l) {
				return nil, fmt.Errorf("sqldb: truncated text value %d", i)
			}
			row = append(row, Str(string(b[:l])))
			b = b[l:]
		default:
			return nil, fmt.Errorf("sqldb: bad type tag %d in row value %d", t, i)
		}
	}
	return row, nil
}
