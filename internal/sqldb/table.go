package sqldb

import (
	"errors"
	"fmt"

	"cachegenie/internal/btree"
	"cachegenie/internal/storage"
)

// Errors returned by table operations.
var (
	ErrDuplicateKey  = errors.New("sqldb: duplicate key")
	ErrRowNotFound   = errors.New("sqldb: row not found")
	ErrNullViolation = errors.New("sqldb: NOT NULL violation")
)

// Index is a secondary index over one or more columns. Non-unique indexes
// append the primary key to the B+tree key to disambiguate duplicates.
type Index struct {
	Name   string
	Cols   []int // column positions in the schema
	Unique bool
	tree   *btree.Tree
}

// ColNames returns the indexed column names for schema s.
func (ix *Index) ColNames(s *Schema) []string {
	names := make([]string, len(ix.Cols))
	for i, c := range ix.Cols {
		names[i] = s.Columns[c].Name
	}
	return names
}

// table is the physical storage for one table. All mutating methods are raw:
// they maintain storage and indexes but do NOT check locks or fire triggers;
// the engine layers those on top.
type table struct {
	schema *Schema
	heap   *storage.HeapFile
	// byPK maps primary key -> heap record id.
	byPK    map[int64]storage.RecordID
	nextID  int64
	indexes []*Index
	rows    int
}

func newTable(schema *Schema, disk *storage.Disk, pool *storage.BufferPool) *table {
	return &table{
		schema: schema,
		heap:   storage.NewHeapFile(disk, pool),
		byPK:   make(map[int64]storage.RecordID),
		nextID: 1,
	}
}

// indexKey builds the B+tree key for row under index ix.
func (t *table) indexKey(ix *Index, row Row) []byte {
	var key []byte
	for _, c := range ix.Cols {
		key = EncodeKey(key, row[c])
	}
	if !ix.Unique {
		key = EncodeKey(key, row[t.schema.PKIndex])
	}
	return key
}

// prefixKey builds the B+tree key prefix for equality values on the leading
// index columns.
func (t *table) prefixKey(vals []Value) []byte {
	var key []byte
	for _, v := range vals {
		key = EncodeKey(key, v)
	}
	return key
}

// addIndex registers and builds a new index over existing rows.
func (t *table) addIndex(ix *Index) error {
	ix.tree = btree.New(btree.DefaultOrder)
	err := t.scan(func(row Row) (bool, error) {
		key := t.indexKey(ix, row)
		if ix.Unique {
			if _, exists := ix.tree.Get(key); exists {
				return false, fmt.Errorf("%w: building index %s", ErrDuplicateKey, ix.Name)
			}
		}
		ix.tree.Set(key, row[t.schema.PKIndex].I)
		return true, nil
	})
	if err != nil {
		return err
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

// findIndex returns an index whose leading columns are exactly cols (by
// position), or nil.
func (t *table) findIndex(cols []int) *Index {
	for _, ix := range t.indexes {
		if len(ix.Cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.Cols[i] != c {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// validate checks NOT NULL constraints and column count/types.
func (t *table) validate(row Row) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("sqldb: table %s: row has %d values, want %d",
			t.schema.Table, len(row), len(t.schema.Columns))
	}
	for i, v := range row {
		col := t.schema.Columns[i]
		if v.Null {
			if col.NotNull {
				return fmt.Errorf("%w: %s.%s", ErrNullViolation, t.schema.Table, col.Name)
			}
			continue
		}
		if v.Type != col.Type {
			// Permit INT literals in FLOAT columns and vice versa is NOT
			// allowed; the executor coerces before calling.
			return fmt.Errorf("sqldb: table %s column %s: value type %v, want %v",
				t.schema.Table, col.Name, v.Type, col.Type)
		}
	}
	return nil
}

// insertRaw inserts row (assigning the PK if zero/NULL), maintains indexes,
// and returns the stored row.
func (t *table) insertRaw(row Row) (Row, error) {
	row = row.Clone()
	pk := &row[t.schema.PKIndex]
	if pk.Null || pk.I == 0 {
		*pk = I64(t.nextID)
		t.nextID++
	} else if pk.I >= t.nextID {
		t.nextID = pk.I + 1
	}
	if err := t.validate(row); err != nil {
		return nil, err
	}
	if _, dup := t.byPK[pk.I]; dup {
		return nil, fmt.Errorf("%w: %s pk %d", ErrDuplicateKey, t.schema.Table, pk.I)
	}
	// Unique index checks before any mutation.
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		if _, exists := ix.tree.Get(t.indexKey(ix, row)); exists {
			return nil, fmt.Errorf("%w: %s index %s", ErrDuplicateKey, t.schema.Table, ix.Name)
		}
	}
	rid, err := t.heap.Insert(encodeRow(nil, row))
	if err != nil {
		return nil, err
	}
	t.byPK[pk.I] = rid
	for _, ix := range t.indexes {
		ix.tree.Set(t.indexKey(ix, row), pk.I)
	}
	t.rows++
	return row, nil
}

// getRaw fetches the row with primary key pk.
func (t *table) getRaw(pk int64) (Row, error) {
	rid, ok := t.byPK[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s pk %d", ErrRowNotFound, t.schema.Table, pk)
	}
	rec, err := t.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return decodeRow(rec)
}

// updateRaw replaces the row with old's primary key by new (PK change is not
// supported), maintaining indexes. Returns the stored new row.
func (t *table) updateRaw(old, new Row) (Row, error) {
	new = new.Clone()
	if err := t.validate(new); err != nil {
		return nil, err
	}
	pk := old[t.schema.PKIndex].I
	if new[t.schema.PKIndex].I != pk {
		return nil, fmt.Errorf("sqldb: table %s: primary key update not supported", t.schema.Table)
	}
	rid, ok := t.byPK[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s pk %d", ErrRowNotFound, t.schema.Table, pk)
	}
	// Unique checks for changed index keys.
	for _, ix := range t.indexes {
		if !ix.Unique {
			continue
		}
		oldKey, newKey := t.indexKey(ix, old), t.indexKey(ix, new)
		if string(oldKey) == string(newKey) {
			continue
		}
		if _, exists := ix.tree.Get(newKey); exists {
			return nil, fmt.Errorf("%w: %s index %s", ErrDuplicateKey, t.schema.Table, ix.Name)
		}
	}
	newRID, err := t.heap.Update(rid, encodeRow(nil, new))
	if err != nil {
		return nil, err
	}
	t.byPK[pk] = newRID
	for _, ix := range t.indexes {
		oldKey, newKey := t.indexKey(ix, old), t.indexKey(ix, new)
		if string(oldKey) == string(newKey) {
			continue
		}
		ix.tree.Delete(oldKey)
		ix.tree.Set(newKey, pk)
	}
	return new, nil
}

// deleteRaw removes the row with old's primary key, maintaining indexes.
func (t *table) deleteRaw(old Row) error {
	pk := old[t.schema.PKIndex].I
	rid, ok := t.byPK[pk]
	if !ok {
		return fmt.Errorf("%w: %s pk %d", ErrRowNotFound, t.schema.Table, pk)
	}
	if err := t.heap.Delete(rid); err != nil {
		return err
	}
	delete(t.byPK, pk)
	for _, ix := range t.indexes {
		ix.tree.Delete(t.indexKey(ix, old))
	}
	t.rows--
	return nil
}

// scan iterates all rows; fn returns (continue, error).
func (t *table) scan(fn func(Row) (bool, error)) error {
	var inner error
	err := t.heap.Scan(func(_ storage.RecordID, data []byte) bool {
		row, err := decodeRow(data)
		if err != nil {
			inner = err
			return false
		}
		cont, err := fn(row)
		if err != nil {
			inner = err
			return false
		}
		return cont
	})
	if inner != nil {
		return inner
	}
	return err
}

// scanIndexEq iterates rows whose leading index columns equal vals, in index
// order.
func (t *table) scanIndexEq(ix *Index, vals []Value, fn func(Row) (bool, error)) error {
	prefix := t.prefixKey(vals)
	hi := append(append([]byte(nil), prefix...), 0xFF, 0xFF)
	// The 0xFF sentinel works because EncodeKey values always start with
	// 0x00/0x01 tag bytes, so no continuation can exceed it... except text
	// bytes can be 0xFF. Use prefix-compare in the loop instead for safety.
	_ = hi
	for it := ix.tree.Scan(prefix, nil); it.Valid(); it.Next() {
		k := it.Key()
		if len(k) < len(prefix) || string(k[:len(prefix)]) != string(prefix) {
			break
		}
		row, err := t.getRaw(it.Value())
		if err != nil {
			return err
		}
		cont, err := fn(row)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}
