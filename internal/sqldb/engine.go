package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachegenie/internal/latency"
	"cachegenie/internal/sqlparse"
	"cachegenie/internal/storage"
	"cachegenie/internal/wal"
)

// TriggerOp identifies the mutating operation a trigger fires on.
type TriggerOp int

// Trigger operations.
const (
	TrigInsert TriggerOp = iota + 1
	TrigUpdate
	TrigDelete
)

var trigOpNames = map[TriggerOp]string{
	TrigInsert: "INSERT", TrigUpdate: "UPDATE", TrigDelete: "DELETE",
}

// String implements fmt.Stringer.
func (op TriggerOp) String() string { return trigOpNames[op] }

// TriggerEvent carries the modified row(s) to a trigger function, mirroring
// the OLD/NEW row views PL/Python triggers receive in Postgres.
type TriggerEvent struct {
	Table  string
	Op     TriggerOp
	Schema *Schema
	Old    Row // set for UPDATE and DELETE
	New    Row // set for INSERT and UPDATE
}

// Queryer runs read queries. Triggers receive the enclosing transaction as a
// Queryer so re-entrant reads (e.g. a top-K recomputation) share its locks.
type Queryer interface {
	Query(sql string, args ...Value) (*ResultSet, error)
}

// TriggerFunc is the body of a trigger. An error aborts the statement that
// fired it, exactly like raising an exception inside a Postgres trigger.
type TriggerFunc func(q Queryer, ev TriggerEvent) error

// Trigger is a row-level AFTER trigger.
type Trigger struct {
	Name  string
	Table string
	Op    TriggerOp
	Fn    TriggerFunc
	// ReadsTables declares the tables Fn may query. The engine pre-locks
	// them (shared) together with the trigger's own table, in sorted name
	// order, before executing the mutating statement — making single-
	// statement transactions deadlock-free even when triggers on different
	// tables read each other's tables.
	ReadsTables []string
	// Source is the generated, human-readable trigger program. The engine
	// does not interpret it; CacheGenie generates it alongside Fn so the
	// paper's programmer-effort metrics (§5.2: 48 triggers, ~1720 lines) are
	// measurable on this implementation.
	Source string
}

// Result reports the effects of a mutating statement.
type Result struct {
	RowsAffected int
	LastInsertID int64
	// Returning holds rows requested by INSERT ... RETURNING.
	Returning [][]Value
}

// ResultSet is the outcome of a query.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Stats counts engine activity; all fields are cumulative.
type Stats struct {
	Selects       int64
	Inserts       int64
	Updates       int64
	Deletes       int64
	TriggersFired int64
	TxnsCommitted int64
	TxnsAborted   int64
}

// Config configures a DB.
type Config struct {
	// BufferPoolPages is the buffer pool capacity (default 4096 pages,
	// i.e. 32 MiB of 8 KiB pages).
	BufferPoolPages int
	// DiskWidth bounds concurrent simulated-disk requests (default 2).
	DiskWidth int
	// CPUWidth bounds statements concurrently consuming the injected DBCPU
	// cost, modelling the database box's cores (default 4). Only matters
	// when Latency.DBCPU is nonzero.
	CPUWidth int
	// Latency is the injected cost model (zero: no injected cost).
	Latency latency.Model
	// Sleeper implements time passage for injected costs (default real).
	Sleeper latency.Sleeper
	// LockTimeout bounds lock waits (default 5s).
	LockTimeout time.Duration
	// DataDir, when set, makes the database durable: committed
	// transactions are redo-logged to a group-commit WAL under
	// DataDir/wal, a clean Close snapshots the full state, and Open
	// replays snapshot + log to the last complete commit record. Empty
	// means the engine is memory-only (the pre-WAL behavior).
	DataDir string
	// WALSegmentBytes rotates WAL segments at this size (default 64 MiB).
	WALSegmentBytes int64
	// WALGroupMax caps commits coalesced into one fsync (default 128).
	WALGroupMax int
	// WALNoSync skips fsync on commit — crash durability is then only as
	// good as the page cache. For tests and deliberate speed-over-safety
	// runs.
	WALNoSync bool
}

// DB is the database engine. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex // guards catalog maps
	disk   *storage.Disk
	pool   *storage.BufferPool
	tables map[string]*table
	locks  map[string]*tableLock
	// triggers[table][op] is the ordered trigger list.
	triggers map[string]map[TriggerOp][]*Trigger

	model           latency.Model
	cpuGate         chan struct{}
	sleeper         latency.Sleeper
	lockTimeout     time.Duration
	triggersEnabled atomic.Bool
	nextTxn         atomic.Int64

	// Durability state; all nil/zero when Config.DataDir is unset.
	wal        *wal.Writer
	walMetrics *wal.Metrics
	dataDir    string
	epoch      atomic.Uint64
	recovery   RecoveryInfo
	closed     atomic.Bool

	statSelects  atomic.Int64
	statInserts  atomic.Int64
	statUpdates  atomic.Int64
	statDeletes  atomic.Int64
	statTriggers atomic.Int64
	statCommits  atomic.Int64
	statAborts   atomic.Int64
}

// maxTriggerDepth bounds trigger-initiated writes re-firing triggers.
const maxTriggerDepth = 4

// Open creates a database. With Config.DataDir unset it is a fresh,
// memory-only engine and never fails; with DataDir set it recovers durable
// state (snapshot load, WAL replay to the last complete commit, recovery-
// epoch maintenance) before accepting traffic — see RecoveryInfo.
func Open(cfg Config) (*DB, error) {
	db := openMem(cfg)
	if cfg.DataDir == "" {
		return db, nil
	}
	if err := db.openDurable(cfg); err != nil {
		return nil, err
	}
	return db, nil
}

// MustOpen is Open for configurations that cannot fail — memory-only
// engines in tests and benchmarks. It panics on error.
func MustOpen(cfg Config) *DB {
	db, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

func openMem(cfg Config) *DB {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 4096
	}
	if cfg.DiskWidth <= 0 {
		cfg.DiskWidth = 2
	}
	if cfg.CPUWidth <= 0 {
		cfg.CPUWidth = 4
	}
	if cfg.Sleeper == nil {
		cfg.Sleeper = latency.RealSleeper{}
	}
	if cfg.LockTimeout <= 0 {
		cfg.LockTimeout = 5 * time.Second
	}
	disk := storage.NewDiskModel(cfg.Latency, cfg.Sleeper, cfg.DiskWidth)
	db := &DB{
		disk:        disk,
		pool:        storage.NewBufferPool(disk, cfg.BufferPoolPages),
		tables:      make(map[string]*table),
		locks:       make(map[string]*tableLock),
		triggers:    make(map[string]map[TriggerOp][]*Trigger),
		model:       cfg.Latency,
		cpuGate:     make(chan struct{}, cfg.CPUWidth),
		sleeper:     cfg.Sleeper,
		lockTimeout: cfg.LockTimeout,
	}
	db.triggersEnabled.Store(true)
	return db
}

// BufferPool exposes the pool for experiment instrumentation (resize,
// stats). Production callers should not need it.
func (db *DB) BufferPool() *storage.BufferPool { return db.pool }

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	return Stats{
		Selects:       db.statSelects.Load(),
		Inserts:       db.statInserts.Load(),
		Updates:       db.statUpdates.Load(),
		Deletes:       db.statDeletes.Load(),
		TriggersFired: db.statTriggers.Load(),
		TxnsCommitted: db.statCommits.Load(),
		TxnsAborted:   db.statAborts.Load(),
	}
}

// SetTriggersEnabled toggles trigger firing globally. Experiment 5 measures
// trigger overhead by replaying the workload with triggers disabled (the
// paper's "ideal system").
func (db *DB) SetTriggersEnabled(on bool) { db.triggersEnabled.Store(on) }

// TriggersEnabled reports the toggle state.
func (db *DB) TriggersEnabled() bool { return db.triggersEnabled.Load() }

func (db *DB) lockFor(tableName string) *tableLock {
	db.mu.Lock()
	defer db.mu.Unlock()
	l, ok := db.locks[tableName]
	if !ok {
		l = newTableLock()
		db.locks[tableName] = l
	}
	return l
}

func (db *DB) table(name string) (*table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", name)
	}
	return t, nil
}

// Tables lists table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns the named table's schema.
func (db *DB) Schema(table string) (*Schema, error) {
	t, err := db.table(table)
	if err != nil {
		return nil, err
	}
	return t.schema, nil
}

// NumRows reports a table's row count (no locking; approximate under
// concurrency).
func (db *DB) NumRows(table string) (int, error) {
	t, err := db.table(table)
	if err != nil {
		return 0, err
	}
	return t.rows, nil
}

// CreateTrigger installs a row-level AFTER trigger. Triggers on one table
// and op fire in installation order.
func (db *DB) CreateTrigger(tr Trigger) error {
	if tr.Fn == nil {
		return errors.New("sqldb: trigger has no function")
	}
	if _, err := db.table(tr.Table); err != nil {
		return err
	}
	switch tr.Op {
	case TrigInsert, TrigUpdate, TrigDelete:
	default:
		return fmt.Errorf("sqldb: bad trigger op %d", int(tr.Op))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	byOp, ok := db.triggers[tr.Table]
	if !ok {
		byOp = make(map[TriggerOp][]*Trigger)
		db.triggers[tr.Table] = byOp
	}
	for _, existing := range byOp[tr.Op] {
		if existing.Name == tr.Name {
			return fmt.Errorf("sqldb: trigger %q already exists on %s %s", tr.Name, tr.Table, tr.Op)
		}
	}
	cp := tr
	byOp[tr.Op] = append(byOp[tr.Op], &cp)
	return nil
}

// DropTrigger removes the named trigger from a table (all ops).
func (db *DB) DropTrigger(table, name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := false
	for op, list := range db.triggers[table] {
		keep := list[:0]
		for _, tr := range list {
			if tr.Name == name {
				dropped = true
				continue
			}
			keep = append(keep, tr)
		}
		db.triggers[table][op] = keep
	}
	return dropped
}

// Triggers returns the installed triggers for a table and op (nil-safe).
func (db *DB) Triggers(table string, op TriggerOp) []*Trigger {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]*Trigger(nil), db.triggers[table][op]...)
}

// AllTriggers returns every installed trigger.
func (db *DB) AllTriggers() []*Trigger {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*Trigger
	for _, byOp := range db.triggers {
		for _, list := range byOp {
			out = append(out, list...)
		}
	}
	return out
}

func (db *DB) fireTriggers(tx *Txn, ev TriggerEvent) error {
	if !db.triggersEnabled.Load() || tx.depth >= maxTriggerDepth {
		return nil
	}
	db.mu.RLock()
	list := db.triggers[ev.Table][ev.Op]
	db.mu.RUnlock()
	if len(list) == 0 {
		return nil
	}
	tx.depth++
	defer func() { tx.depth-- }()
	for _, tr := range list {
		db.statTriggers.Add(1)
		if err := tr.Fn(tx, ev); err != nil {
			return fmt.Errorf("sqldb: trigger %q on %s %s: %w", tr.Name, ev.Table, ev.Op, err)
		}
	}
	return nil
}

// lockForWrite acquires the locks a mutating statement on table needs:
// exclusive on the table itself plus shared on every table its triggers
// declare they read, all in sorted name order to prevent deadlocks.
func (tx *Txn) lockForWrite(table string, op TriggerOp) error {
	names := []string{table}
	if tx.db.triggersEnabled.Load() {
		tx.db.mu.RLock()
		for _, tr := range tx.db.triggers[table][op] {
			names = append(names, tr.ReadsTables...)
		}
		tx.db.mu.RUnlock()
	}
	sort.Strings(names)
	prev := ""
	for _, n := range names {
		if n == prev {
			continue
		}
		prev = n
		mode := lockShared
		if n == table {
			mode = lockExclusive
		}
		if err := tx.lockTable(n, mode); err != nil {
			return err
		}
	}
	return nil
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	return &Txn{
		db:    db,
		id:    db.nextTxn.Add(1),
		locks: map[string]lockMode{},
	}
}

// chargeStatement injects the per-statement network and CPU cost. The CPU
// charge passes through a bounded gate so concurrent statements contend for
// the database box's cores; this is what makes the NoCache configuration
// CPU-bound under load, as in the paper's Experiment 1.
func (db *DB) chargeStatement() {
	if db.model.DBRoundTrip > 0 {
		db.sleeper.Sleep(db.model.DBRoundTrip)
	}
	if db.model.DBCPU > 0 {
		db.cpuGate <- struct{}{}
		db.sleeper.Sleep(db.model.DBCPU)
		<-db.cpuGate
	}
}

// Exec parses and executes one statement in autocommit mode.
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return db.ExecAST(st, args...)
}

// ExecAST executes a parsed statement in autocommit mode.
func (db *DB) ExecAST(st sqlparse.Statement, args ...Value) (Result, error) {
	switch st.(type) {
	case *sqlparse.Begin, *sqlparse.Commit, *sqlparse.Rollback:
		return Result{}, errors.New("sqldb: use Begin()/Commit()/Rollback() methods for transaction control")
	}
	tx := db.Begin()
	res, err := tx.execAST(st, args...)
	if err != nil {
		_ = tx.Rollback()
		db.statAborts.Add(1)
		return Result{}, err
	}
	if err := tx.Commit(); err != nil {
		return Result{}, err
	}
	db.statCommits.Add(1)
	return res, nil
}

// Query parses and runs a SELECT in autocommit mode.
func (db *DB) Query(sql string, args ...Value) (*ResultSet, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query needs a SELECT, got %T", st)
	}
	return db.QueryAST(sel, args...)
}

// QueryAST runs a parsed SELECT in autocommit mode.
func (db *DB) QueryAST(sel *sqlparse.Select, args ...Value) (*ResultSet, error) {
	tx := db.Begin()
	defer func() { _ = tx.Rollback() }()
	rs, err := tx.querySelect(sel, args...)
	if err != nil {
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Exec executes one mutating statement inside the transaction.
func (tx *Txn) Exec(sql string, args ...Value) (Result, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return Result{}, err
	}
	return tx.execAST(st, args...)
}

// Query runs a SELECT inside the transaction. It implements Queryer.
func (tx *Txn) Query(sql string, args ...Value) (*ResultSet, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query needs a SELECT, got %T", st)
	}
	return tx.querySelect(sel, args...)
}

var _ Queryer = (*Txn)(nil)
