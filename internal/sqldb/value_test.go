package sqldb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I64(1), I64(2), -1},
		{I64(2), I64(2), 0},
		{I64(3), I64(2), 1},
		{F64(1.5), I64(2), -1},
		{I64(2), F64(1.5), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{NullOf(TypeInt), I64(-100), -1},
		{NullOf(TypeInt), NullOf(TypeText), 0},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullNeverEqual(t *testing.T) {
	if Equal(NullOf(TypeInt), NullOf(TypeInt)) {
		t.Fatal("NULL = NULL should be false")
	}
	if Equal(NullOf(TypeInt), I64(0)) {
		t.Fatal("NULL = 0 should be false")
	}
}

// TestQuickEncodeKeyOrderInt: key encoding preserves int order.
func TestQuickEncodeKeyOrderInt(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, I64(a))
		kb := EncodeKey(nil, I64(b))
		cmp := bytes.Compare(ka, kb)
		want := Compare(I64(a), I64(b))
		return cmp == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeKeyOrderFloat(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, F64(a))
		kb := EncodeKey(nil, F64(b))
		return bytes.Compare(ka, kb) == Compare(F64(a), F64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeKeyOrderString(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKey(nil, Str(a))
		kb := EncodeKey(nil, Str(b))
		return bytes.Compare(ka, kb) == Compare(Str(a), Str(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyStringPrefixSafety(t *testing.T) {
	// Composite keys must not confuse ("ab","c") with ("a","bc").
	k1 := EncodeKey(EncodeKey(nil, Str("ab")), Str("c"))
	k2 := EncodeKey(EncodeKey(nil, Str("a")), Str("bc"))
	if bytes.Equal(k1, k2) {
		t.Fatal("composite string keys collide")
	}
	// Embedded NULs must stay ordered and unambiguous.
	k3 := EncodeKey(nil, Str("a\x00b"))
	k4 := EncodeKey(nil, Str("a"))
	if bytes.Compare(k4, k3) >= 0 {
		t.Fatal(`"a" should sort before "a\x00b"`)
	}
}

func TestEncodeKeyNullSortsFirst(t *testing.T) {
	kn := EncodeKey(nil, NullOf(TypeInt))
	kv := EncodeKey(nil, I64(math.MinInt64))
	if bytes.Compare(kn, kv) >= 0 {
		t.Fatal("NULL key should sort before all values")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{I64(1), Str("hello"), Bool(true), F64(3.25), Time(time.Unix(123, 456000))},
		{I64(-9), Str(""), NullOf(TypeBool), NullOf(TypeFloat), NullOf(TypeTime)},
		{I64(0), Str("with\x00nul and 'quotes'"), Bool(false), F64(math.Inf(1)), Time(time.Unix(0, 0))},
	}
	for _, r := range rows {
		enc := encodeRow(nil, r)
		dec, err := decodeRow(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(r) {
			t.Fatalf("len = %d, want %d", len(dec), len(r))
		}
		for i := range r {
			if r[i].Null != dec[i].Null || r[i].Type != dec[i].Type {
				t.Fatalf("col %d: %+v != %+v", i, dec[i], r[i])
			}
			if !r[i].Null && Compare(r[i], dec[i]) != 0 {
				t.Fatalf("col %d: %v != %v", i, dec[i], r[i])
			}
		}
	}
}

func TestQuickRowCodec(t *testing.T) {
	f := func(i int64, s string, b bool, fl float64) bool {
		if math.IsNaN(fl) {
			return true
		}
		r := Row{I64(i), Str(s), Bool(b), F64(fl)}
		dec, err := decodeRow(encodeRow(nil, r))
		if err != nil {
			return false
		}
		return Compare(dec[0], r[0]) == 0 && Compare(dec[1], r[1]) == 0 &&
			Compare(dec[2], r[2]) == 0 && Compare(dec[3], r[3]) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRowCorruption(t *testing.T) {
	r := Row{I64(1), Str("x")}
	enc := encodeRow(nil, r)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeRow(enc[:cut]); err == nil && cut < len(enc) {
			// Some prefixes may decode as shorter valid rows only if the
			// count matches; the count is in the first 4 bytes so any cut
			// below full length must error.
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}
