package sqldb

import (
	"errors"
	"fmt"
	"sort"

	"cachegenie/internal/sqlparse"
)

// execAST routes a parsed statement to its executor.
func (tx *Txn) execAST(st sqlparse.Statement, args ...Value) (Result, error) {
	if tx.done {
		return Result{}, ErrTxnDone
	}
	switch s := st.(type) {
	case *sqlparse.CreateTable:
		return Result{}, tx.createTable(s)
	case *sqlparse.CreateIndex:
		return Result{}, tx.createIndex(s)
	case *sqlparse.Insert:
		return tx.execInsert(s, args)
	case *sqlparse.Update:
		return tx.execUpdate(s, args)
	case *sqlparse.Delete:
		return tx.execDelete(s, args)
	case *sqlparse.Select:
		return Result{}, fmt.Errorf("sqldb: use Query for SELECT")
	}
	return Result{}, fmt.Errorf("sqldb: cannot execute %T", st)
}

func (db *DB) createTable(ct *sqlparse.CreateTable) (*Schema, error) {
	schema, err := schemaFromAST(ct)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[schema.Table]; exists {
		return nil, fmt.Errorf("sqldb: table %q already exists", schema.Table)
	}
	db.tables[schema.Table] = newTable(schema, db.disk, db.pool)
	return schema, nil
}

func (tx *Txn) createTable(ct *sqlparse.CreateTable) error {
	schema, err := tx.db.createTable(ct)
	if err != nil {
		return err
	}
	// DDL is redo-logged as its canonical SQL text. (DDL is not undone by
	// Rollback — it never was — so it is only safe in autocommit form,
	// which is how every caller issues it.)
	tx.redo = append(tx.redo, redoRec{typ: recDDL, sql: schema.String()})
	return nil
}

// addIndexFromAST resolves and builds an index without locking; callers
// are the locked transaction path and single-threaded recovery.
func (db *DB) addIndexFromAST(ci *sqlparse.CreateIndex) error {
	t, err := db.table(ci.Table)
	if err != nil {
		return err
	}
	cols := make([]int, len(ci.Columns))
	for i, name := range ci.Columns {
		ci2 := t.schema.ColIndex(name)
		if ci2 < 0 {
			return fmt.Errorf("sqldb: index %s: no column %q in table %s", ci.Name, name, ci.Table)
		}
		cols[i] = ci2
	}
	for _, ix := range t.indexes {
		if ix.Name == ci.Name {
			return fmt.Errorf("sqldb: index %q already exists", ci.Name)
		}
	}
	return t.addIndex(&Index{Name: ci.Name, Cols: cols, Unique: ci.Unique})
}

func (tx *Txn) createIndex(ci *sqlparse.CreateIndex) error {
	if err := tx.lockTable(ci.Table, lockExclusive); err != nil {
		return err
	}
	if err := tx.db.addIndexFromAST(ci); err != nil {
		return err
	}
	tx.redo = append(tx.redo, redoRec{typ: recDDL, sql: createIndexSQL(ci)})
	return nil
}

// coerce converts v to column type ct where a safe conversion exists.
func coerce(v Value, ct Type) (Value, error) {
	if v.Null {
		return NullOf(ct), nil
	}
	if v.Type == ct {
		return v, nil
	}
	switch {
	case ct == TypeFloat && v.Type == TypeInt:
		return F64(float64(v.I)), nil
	case ct == TypeInt && v.Type == TypeFloat && v.F == float64(int64(v.F)):
		return I64(int64(v.F)), nil
	case ct == TypeTime && v.Type == TypeInt:
		return Value{Type: TypeTime, I: v.I}, nil
	case ct == TypeBool && v.Type == TypeInt && (v.I == 0 || v.I == 1):
		return Bool(v.I == 1), nil
	}
	return Value{}, fmt.Errorf("sqldb: cannot coerce %v value %s to %v", v.Type, v, ct)
}

// litValue converts an AST literal to a Value.
func litValue(l *sqlparse.Literal) Value {
	switch l.Kind {
	case "int":
		return I64(l.Int)
	case "float":
		return F64(l.Float)
	case "string":
		return Str(l.Str)
	case "bool":
		return Bool(l.Bool)
	default: // "null"
		return Value{Null: true}
	}
}

// evalScalar evaluates an expression outside a join context: literals,
// params, and (when row != nil) references to columns of schema with
// optional +/- arithmetic.
func evalScalar(e sqlparse.Expr, args []Value, schema *Schema, row Row) (Value, error) {
	switch {
	case e.Lit != nil:
		return litValue(e.Lit), nil
	case e.Param != 0:
		if e.Param > len(args) {
			return Value{}, fmt.Errorf("sqldb: statement references $%d but only %d args given", e.Param, len(args))
		}
		return args[e.Param-1], nil
	case e.Col != nil:
		if row == nil || schema == nil {
			return Value{}, fmt.Errorf("sqldb: column reference %s not allowed here", e.Col)
		}
		ci := schema.ColIndex(e.Col.Column)
		if ci < 0 {
			return Value{}, fmt.Errorf("sqldb: no column %q in table %s", e.Col.Column, schema.Table)
		}
		v := row[ci]
		if e.Op == 0 {
			return v, nil
		}
		var operand Value
		if e.OperandParam != 0 {
			if e.OperandParam > len(args) {
				return Value{}, fmt.Errorf("sqldb: statement references $%d but only %d args given", e.OperandParam, len(args))
			}
			operand = args[e.OperandParam-1]
		} else {
			operand = litValue(e.Operand)
		}
		if v.Null {
			return v, nil
		}
		switch {
		case v.Type == TypeInt && operand.Type == TypeInt:
			if e.Op == '+' {
				return I64(v.I + operand.I), nil
			}
			return I64(v.I - operand.I), nil
		case v.IsNumeric() && operand.IsNumeric():
			if e.Op == '+' {
				return F64(v.numeric() + operand.numeric()), nil
			}
			return F64(v.numeric() - operand.numeric()), nil
		}
		return Value{}, fmt.Errorf("sqldb: arithmetic on non-numeric column %s", e.Col)
	}
	return Value{}, fmt.Errorf("sqldb: empty expression")
}

// ---------- SELECT ----------

// env is the executor's join environment: tables joined so far and, per
// result row, one Row per table.
type env struct {
	names []string
	tabs  []*table
}

// resolve finds (tableIdx, colIdx) for a column reference.
func (e *env) resolve(ref sqlparse.ColumnRef) (int, int, error) {
	if ref.Table != "" {
		for ti, n := range e.names {
			if n == ref.Table {
				ci := e.tabs[ti].schema.ColIndex(ref.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqldb: no column %q in table %s", ref.Column, n)
				}
				return ti, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqldb: table %q not in FROM clause", ref.Table)
	}
	found := -1
	foundCol := -1
	for ti, t := range e.tabs {
		if ci := t.schema.ColIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %q", ref.Column)
			}
			found, foundCol = ti, ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqldb: no column %q in any FROM table", ref.Column)
	}
	return found, foundCol, nil
}

// covers reports whether every table referenced by p resolves in e.
func (e *env) covers(p sqlparse.Predicate) bool {
	ok := true
	var walk func(sqlparse.Predicate)
	checkRef := func(ref sqlparse.ColumnRef) {
		if _, _, err := e.resolve(ref); err != nil {
			ok = false
		}
	}
	walk = func(p sqlparse.Predicate) {
		switch q := p.(type) {
		case *sqlparse.Compare:
			checkRef(q.Col)
			if q.Rhs.Col != nil {
				checkRef(*q.Rhs.Col)
			}
		case *sqlparse.In:
			checkRef(q.Col)
		case *sqlparse.IsNull:
			checkRef(q.Col)
		case *sqlparse.And:
			walk(q.L)
			walk(q.R)
		case *sqlparse.Or:
			walk(q.L)
			walk(q.R)
		}
	}
	walk(p)
	return ok
}

// evalPred evaluates predicate p over rows in environment e.
func (e *env) evalPred(p sqlparse.Predicate, rows []Row, args []Value) (bool, error) {
	switch q := p.(type) {
	case *sqlparse.Compare:
		ti, ci, err := e.resolve(q.Col)
		if err != nil {
			return false, err
		}
		lhs := rows[ti][ci]
		rhs, err := e.evalExpr(q.Rhs, rows, args)
		if err != nil {
			return false, err
		}
		if lhs.Null || rhs.Null {
			return false, nil
		}
		c := Compare(lhs, rhs)
		switch q.Op {
		case sqlparse.OpEq:
			return c == 0, nil
		case sqlparse.OpNeq:
			return c != 0, nil
		case sqlparse.OpLt:
			return c < 0, nil
		case sqlparse.OpLe:
			return c <= 0, nil
		case sqlparse.OpGt:
			return c > 0, nil
		case sqlparse.OpGe:
			return c >= 0, nil
		}
		return false, fmt.Errorf("sqldb: bad compare op")
	case *sqlparse.In:
		ti, ci, err := e.resolve(q.Col)
		if err != nil {
			return false, err
		}
		lhs := rows[ti][ci]
		if lhs.Null {
			return false, nil
		}
		for _, ex := range q.List {
			rhs, err := e.evalExpr(ex, rows, args)
			if err != nil {
				return false, err
			}
			if Equal(lhs, rhs) {
				return true, nil
			}
		}
		return false, nil
	case *sqlparse.IsNull:
		ti, ci, err := e.resolve(q.Col)
		if err != nil {
			return false, err
		}
		isNull := rows[ti][ci].Null
		if q.Not {
			return !isNull, nil
		}
		return isNull, nil
	case *sqlparse.And:
		l, err := e.evalPred(q.L, rows, args)
		if err != nil || !l {
			return false, err
		}
		return e.evalPred(q.R, rows, args)
	case *sqlparse.Or:
		l, err := e.evalPred(q.L, rows, args)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return e.evalPred(q.R, rows, args)
	}
	return false, fmt.Errorf("sqldb: bad predicate %T", p)
}

func (e *env) evalExpr(ex sqlparse.Expr, rows []Row, args []Value) (Value, error) {
	switch {
	case ex.Lit != nil:
		return litValue(ex.Lit), nil
	case ex.Param != 0:
		if ex.Param > len(args) {
			return Value{}, fmt.Errorf("sqldb: statement references $%d but only %d args given", ex.Param, len(args))
		}
		return args[ex.Param-1], nil
	case ex.Col != nil:
		ti, ci, err := e.resolve(*ex.Col)
		if err != nil {
			return Value{}, err
		}
		return rows[ti][ci], nil
	}
	return Value{}, fmt.Errorf("sqldb: empty expression")
}

// conjuncts flattens the top-level AND tree of p.
func conjuncts(p sqlparse.Predicate) []sqlparse.Predicate {
	if p == nil {
		return nil
	}
	if a, ok := p.(*sqlparse.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []sqlparse.Predicate{p}
}

// eqLookup describes a resolvable equality `col = <literal/param>` on a
// specific table, used for index selection.
type eqLookup struct {
	colIdx int
	val    Value
}

// tableEqualities extracts equality conjuncts on the named table whose RHS
// is a literal or parameter.
func tableEqualities(cs []sqlparse.Predicate, tableName string, t *table, args []Value) ([]eqLookup, error) {
	var eqs []eqLookup
	for _, c := range cs {
		cmp, ok := c.(*sqlparse.Compare)
		if !ok || cmp.Op != sqlparse.OpEq {
			continue
		}
		if cmp.Col.Table != "" && cmp.Col.Table != tableName {
			continue
		}
		ci := t.schema.ColIndex(cmp.Col.Column)
		if ci < 0 {
			continue
		}
		if cmp.Rhs.Col != nil {
			continue
		}
		v, err := evalScalar(cmp.Rhs, args, nil, nil)
		if err != nil {
			return nil, err
		}
		cv, err := coerce(v, t.schema.Columns[ci].Type)
		if err != nil {
			// Type mismatch in a predicate is not an index-selection error;
			// the row-at-a-time evaluation will simply not match.
			continue
		}
		eqs = append(eqs, eqLookup{colIdx: ci, val: cv})
	}
	return eqs, nil
}

// pickAccessPath chooses the best index for the available equalities.
// Returns nil (full scan) when no index matches. PK equality is handled
// separately by the caller.
func pickAccessPath(t *table, eqs []eqLookup) (*Index, []Value) {
	byCol := map[int]Value{}
	for _, eq := range eqs {
		byCol[eq.colIdx] = eq.val
	}
	var best *Index
	bestLen := 0
	for _, ix := range t.indexes {
		matched := 0
		for _, c := range ix.Cols {
			if _, ok := byCol[c]; ok {
				matched++
			} else {
				break
			}
		}
		if matched > bestLen {
			best, bestLen = ix, matched
		}
	}
	if best == nil {
		return nil, nil
	}
	vals := make([]Value, bestLen)
	for i := 0; i < bestLen; i++ {
		vals[i] = byCol[best.Cols[i]]
	}
	return best, vals
}

// baseRows produces the candidate rows of table t (named name) given the
// WHERE conjuncts, using PK or index access when possible.
func (tx *Txn) baseRows(name string, t *table, cs []sqlparse.Predicate, args []Value) ([]Row, error) {
	eqs, err := tableEqualities(cs, name, t, args)
	if err != nil {
		return nil, err
	}
	// PK point lookup.
	for _, eq := range eqs {
		if eq.colIdx == t.schema.PKIndex && eq.val.Type == TypeInt && !eq.val.Null {
			row, err := t.getRaw(eq.val.I)
			if err != nil {
				if isNotFound(err) {
					return nil, nil
				}
				return nil, err
			}
			return []Row{row}, nil
		}
	}
	if ix, vals := pickAccessPath(t, eqs); ix != nil {
		var rows []Row
		err := t.scanIndexEq(ix, vals, func(r Row) (bool, error) {
			rows = append(rows, r)
			return true, nil
		})
		return rows, err
	}
	var rows []Row
	err = t.scan(func(r Row) (bool, error) {
		rows = append(rows, r)
		return true, nil
	})
	return rows, err
}

func isNotFound(err error) bool {
	return errors.Is(err, ErrRowNotFound)
}

// querySelect executes a SELECT inside tx.
func (tx *Txn) querySelect(sel *sqlparse.Select, args ...Value) (*ResultSet, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	tx.db.chargeStatement()
	tx.db.statSelects.Add(1)

	// Lock every referenced table in sorted order (shared).
	names := []string{sel.From}
	for _, j := range sel.Joins {
		names = append(names, j.Table)
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for _, n := range sorted {
		if err := tx.lockTable(n, lockShared); err != nil {
			return nil, err
		}
	}

	base, err := tx.db.table(sel.From)
	if err != nil {
		return nil, err
	}
	cs := conjuncts(sel.Where)
	applied := make([]bool, len(cs))

	e := &env{names: []string{sel.From}, tabs: []*table{base}}
	baseRows, err := tx.baseRows(sel.From, base, cs, args)
	if err != nil {
		return nil, err
	}
	tuples := make([][]Row, 0, len(baseRows))
	for _, r := range baseRows {
		tuples = append(tuples, []Row{r})
	}
	// Apply every conjunct resolvable on the current env; repeated after
	// each join.
	filter := func() error {
		for i, c := range cs {
			if applied[i] || !e.covers(c) {
				continue
			}
			applied[i] = true
			kept := tuples[:0]
			for _, rows := range tuples {
				ok, err := e.evalPred(c, rows, args)
				if err != nil {
					return err
				}
				if ok {
					kept = append(kept, rows)
				}
			}
			tuples = kept
		}
		return nil
	}
	if err := filter(); err != nil {
		return nil, err
	}

	// Index-nested-loop joins.
	for _, j := range sel.Joins {
		jt, err := tx.db.table(j.Table)
		if err != nil {
			return nil, err
		}
		// Determine which side of ON references the new table.
		newSide, oldSide := j.Right, j.Left
		if j.Left.Table == j.Table {
			newSide, oldSide = j.Left, j.Right
		} else if j.Right.Table != j.Table {
			return nil, fmt.Errorf("sqldb: JOIN %s ON references neither side", j.Table)
		}
		oldTi, oldCi, err := e.resolve(oldSide)
		if err != nil {
			return nil, err
		}
		newCi := jt.schema.ColIndex(newSide.Column)
		if newCi < 0 {
			return nil, fmt.Errorf("sqldb: no column %q in table %s", newSide.Column, j.Table)
		}
		matchIx := jt.findIndex([]int{newCi})
		var out [][]Row
		for _, rows := range tuples {
			joinVal := rows[oldTi][oldCi]
			if joinVal.Null {
				continue
			}
			appendMatch := func(r Row) {
				combined := make([]Row, len(rows)+1)
				copy(combined, rows)
				combined[len(rows)] = r
				out = append(out, combined)
			}
			switch {
			case newCi == jt.schema.PKIndex && joinVal.Type == TypeInt:
				r, err := jt.getRaw(joinVal.I)
				if err != nil {
					if isNotFound(err) {
						continue
					}
					return nil, err
				}
				appendMatch(r)
			case matchIx != nil:
				cv, cerr := coerce(joinVal, jt.schema.Columns[newCi].Type)
				if cerr != nil {
					continue
				}
				err := jt.scanIndexEq(matchIx, []Value{cv}, func(r Row) (bool, error) {
					appendMatch(r)
					return true, nil
				})
				if err != nil {
					return nil, err
				}
			default:
				err := jt.scan(func(r Row) (bool, error) {
					if Equal(r[newCi], joinVal) {
						appendMatch(r)
					}
					return true, nil
				})
				if err != nil {
					return nil, err
				}
			}
		}
		tuples = out
		e.names = append(e.names, j.Table)
		e.tabs = append(e.tabs, jt)
		if err := filter(); err != nil {
			return nil, err
		}
	}
	for i, c := range cs {
		if !applied[i] {
			return nil, fmt.Errorf("sqldb: predicate %s references unknown tables/columns", c)
		}
	}

	// ORDER BY on the join environment.
	if len(sel.Order) > 0 {
		type sortKey struct {
			ti, ci int
			desc   bool
		}
		keys := make([]sortKey, len(sel.Order))
		for i, ob := range sel.Order {
			ti, ci, err := e.resolve(ob.Col)
			if err != nil {
				return nil, err
			}
			keys[i] = sortKey{ti, ci, ob.Desc}
		}
		sort.SliceStable(tuples, func(a, b int) bool {
			for _, k := range keys {
				c := Compare(tuples[a][k.ti][k.ci], tuples[b][k.ti][k.ci])
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// OFFSET / LIMIT.
	if sel.Offset > 0 {
		if sel.Offset >= len(tuples) {
			tuples = nil
		} else {
			tuples = tuples[sel.Offset:]
		}
	}
	if sel.Limit >= 0 && sel.Limit < len(tuples) {
		tuples = tuples[:sel.Limit]
	}

	// Projection.
	rs := &ResultSet{}
	switch {
	case sel.CountStar:
		rs.Columns = []string{"count"}
		rs.Rows = []Row{{I64(int64(len(tuples)))}}
	case sel.Star:
		for ti, t := range e.tabs {
			for _, c := range t.schema.Columns {
				if len(e.tabs) > 1 {
					rs.Columns = append(rs.Columns, e.names[ti]+"."+c.Name)
				} else {
					rs.Columns = append(rs.Columns, c.Name)
				}
			}
		}
		for _, rows := range tuples {
			var out Row
			for _, r := range rows {
				out = append(out, r...)
			}
			rs.Rows = append(rs.Rows, out)
		}
	default:
		type proj struct{ ti, ci int }
		projs := make([]proj, len(sel.Columns))
		for i, cr := range sel.Columns {
			ti, ci, err := e.resolve(cr)
			if err != nil {
				return nil, err
			}
			projs[i] = proj{ti, ci}
			rs.Columns = append(rs.Columns, cr.Column)
		}
		for _, rows := range tuples {
			out := make(Row, len(projs))
			for i, p := range projs {
				out[i] = rows[p.ti][p.ci]
			}
			rs.Rows = append(rs.Rows, out)
		}
	}
	return rs, nil
}

// ---------- INSERT / UPDATE / DELETE ----------

func (tx *Txn) execInsert(ins *sqlparse.Insert, args []Value) (Result, error) {
	tx.db.chargeStatement()
	tx.db.statInserts.Add(1)
	t, err := tx.db.table(ins.Table)
	if err != nil {
		return Result{}, err
	}
	if err := tx.lockForWrite(ins.Table, TrigInsert); err != nil {
		return Result{}, err
	}
	row := make(Row, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		row[i] = NullOf(c.Type)
	}
	for i, colName := range ins.Columns {
		ci := t.schema.ColIndex(colName)
		if ci < 0 {
			return Result{}, fmt.Errorf("sqldb: no column %q in table %s", colName, ins.Table)
		}
		v, err := evalScalar(ins.Values[i], args, nil, nil)
		if err != nil {
			return Result{}, err
		}
		cv, err := coerce(v, t.schema.Columns[ci].Type)
		if err != nil {
			return Result{}, fmt.Errorf("sqldb: column %s.%s: %v", ins.Table, colName, err)
		}
		row[ci] = cv
	}
	stored, err := t.insertRaw(row)
	if err != nil {
		return Result{}, err
	}
	tx.undo = append(tx.undo, undoRec{tbl: t, op: TrigInsert, new: stored})
	tx.redo = append(tx.redo, redoRec{typ: recInsert, table: ins.Table, row: stored})
	ev := TriggerEvent{Table: ins.Table, Op: TrigInsert, Schema: t.schema, New: stored}
	if err := tx.db.fireTriggers(tx, ev); err != nil {
		return Result{}, err
	}
	res := Result{RowsAffected: 1, LastInsertID: stored[t.schema.PKIndex].I}
	if len(ins.Returning) > 0 {
		out := make([]Value, len(ins.Returning))
		for i, colName := range ins.Returning {
			ci := t.schema.ColIndex(colName)
			if ci < 0 {
				return Result{}, fmt.Errorf("sqldb: RETURNING: no column %q", colName)
			}
			out[i] = stored[ci]
		}
		res.Returning = [][]Value{out}
	}
	return res, nil
}

// matchSingleTable evaluates a single-table WHERE and returns matching rows.
func (tx *Txn) matchSingleTable(name string, t *table, where sqlparse.Predicate, args []Value) ([]Row, error) {
	cs := conjuncts(where)
	e := &env{names: []string{name}, tabs: []*table{t}}
	rows, err := tx.baseRows(name, t, cs, args)
	if err != nil {
		return nil, err
	}
	if where == nil {
		return rows, nil
	}
	var out []Row
	for _, r := range rows {
		ok, err := e.evalPred(where, []Row{r}, args)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (tx *Txn) execUpdate(up *sqlparse.Update, args []Value) (Result, error) {
	tx.db.chargeStatement()
	tx.db.statUpdates.Add(1)
	t, err := tx.db.table(up.Table)
	if err != nil {
		return Result{}, err
	}
	if err := tx.lockForWrite(up.Table, TrigUpdate); err != nil {
		return Result{}, err
	}
	matches, err := tx.matchSingleTable(up.Table, t, up.Where, args)
	if err != nil {
		return Result{}, err
	}
	for _, old := range matches {
		newRow := old.Clone()
		for _, a := range up.Set {
			ci := t.schema.ColIndex(a.Column)
			if ci < 0 {
				return Result{}, fmt.Errorf("sqldb: no column %q in table %s", a.Column, up.Table)
			}
			v, err := evalScalar(a.Value, args, t.schema, old)
			if err != nil {
				return Result{}, err
			}
			cv, err := coerce(v, t.schema.Columns[ci].Type)
			if err != nil {
				return Result{}, fmt.Errorf("sqldb: column %s.%s: %v", up.Table, a.Column, err)
			}
			newRow[ci] = cv
		}
		stored, err := t.updateRaw(old, newRow)
		if err != nil {
			return Result{}, err
		}
		tx.undo = append(tx.undo, undoRec{tbl: t, op: TrigUpdate, old: old, new: stored})
		tx.redo = append(tx.redo, redoRec{typ: recUpdate, table: up.Table, row: stored})
		ev := TriggerEvent{Table: up.Table, Op: TrigUpdate, Schema: t.schema, Old: old, New: stored}
		if err := tx.db.fireTriggers(tx, ev); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: len(matches)}, nil
}

func (tx *Txn) execDelete(del *sqlparse.Delete, args []Value) (Result, error) {
	tx.db.chargeStatement()
	tx.db.statDeletes.Add(1)
	t, err := tx.db.table(del.Table)
	if err != nil {
		return Result{}, err
	}
	if err := tx.lockForWrite(del.Table, TrigDelete); err != nil {
		return Result{}, err
	}
	matches, err := tx.matchSingleTable(del.Table, t, del.Where, args)
	if err != nil {
		return Result{}, err
	}
	for _, old := range matches {
		if err := t.deleteRaw(old); err != nil {
			return Result{}, err
		}
		tx.undo = append(tx.undo, undoRec{tbl: t, op: TrigDelete, old: old})
		tx.redo = append(tx.redo, redoRec{typ: recDelete, table: del.Table, pk: old[t.schema.PKIndex].I})
		ev := TriggerEvent{Table: del.Table, Op: TrigDelete, Schema: t.schema, Old: old}
		if err := tx.db.fireTriggers(tx, ev); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: len(matches)}, nil
}
