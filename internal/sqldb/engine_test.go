package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func newTestDB(t testing.TB) *DB {
	t.Helper()
	return MustOpen(Config{})
}

func mustExec(t testing.TB, db *DB, sql string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustQuery(t testing.TB, db *DB, sql string, args ...Value) *ResultSet {
	t.Helper()
	rs, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func setupWall(t testing.TB, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE wall (
		id BIGINT PRIMARY KEY,
		user_id BIGINT NOT NULL,
		content TEXT,
		sender_id BIGINT,
		date_posted TIMESTAMP
	)`)
	mustExec(t, db, "CREATE INDEX idx_wall_user ON wall (user_id)")
}

func TestCreateTableImplicitID(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE notes (body TEXT)")
	s, err := db.Schema("notes")
	if err != nil {
		t.Fatal(err)
	}
	if s.PKName() != "id" || s.PKIndex != 0 {
		t.Fatalf("schema = %+v", s)
	}
	res := mustExec(t, db, "INSERT INTO notes (body) VALUES ('hello')")
	if res.LastInsertID != 1 {
		t.Fatalf("LastInsertID = %d", res.LastInsertID)
	}
	res = mustExec(t, db, "INSERT INTO notes (body) VALUES ('two')")
	if res.LastInsertID != 2 {
		t.Fatalf("second LastInsertID = %d", res.LastInsertID)
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	mustExec(t, db, "INSERT INTO wall (user_id, content, sender_id, date_posted) VALUES (42, 'hi', 7, $1)",
		Time(time.Unix(1000, 0)))
	rs := mustQuery(t, db, "SELECT * FROM wall WHERE user_id = 42")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if got := rs.Rows[0][2].S; got != "hi" {
		t.Fatalf("content = %q", got)
	}
	if rs.Columns[0] != "id" || rs.Columns[1] != "user_id" {
		t.Fatalf("columns = %v", rs.Columns)
	}
}

func TestSelectProjectionAndParams(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	for i := 1; i <= 5; i++ {
		mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES ($1, $2)",
			I64(int64(i%2)), Str(fmt.Sprintf("post-%d", i)))
	}
	rs := mustQuery(t, db, "SELECT content FROM wall WHERE user_id = $1", I64(1))
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if len(rs.Columns) != 1 || rs.Columns[0] != "content" {
		t.Fatalf("columns = %v", rs.Columns)
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (1, 'a')")
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (1, 'b')")
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (2, 'c')")
	res := mustExec(t, db, "UPDATE wall SET content = 'edited' WHERE user_id = 1")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	rs := mustQuery(t, db, "SELECT content FROM wall WHERE user_id = 2")
	if rs.Rows[0][0].S != "c" {
		t.Fatal("update leaked to other rows")
	}
}

func TestUpdateArithmetic(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE counters (n INT NOT NULL)")
	mustExec(t, db, "INSERT INTO counters (n) VALUES (10)")
	mustExec(t, db, "UPDATE counters SET n = n + 5 WHERE id = 1")
	mustExec(t, db, "UPDATE counters SET n = n - 2 WHERE id = 1")
	rs := mustQuery(t, db, "SELECT n FROM counters WHERE id = 1")
	if rs.Rows[0][0].I != 13 {
		t.Fatalf("n = %d", rs.Rows[0][0].I)
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (1, 'a')")
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (2, 'b')")
	res := mustExec(t, db, "DELETE FROM wall WHERE user_id = 1")
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM wall")
	if rs.Rows[0][0].I != 1 {
		t.Fatalf("count = %d", rs.Rows[0][0].I)
	}
}

func TestCountWhere(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES ($1, 'x')", I64(int64(i%3)))
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM wall WHERE user_id = 0")
	if rs.Rows[0][0].I != 4 {
		t.Fatalf("count = %d", rs.Rows[0][0].I)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	base := time.Unix(5000, 0)
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO wall (user_id, content, date_posted) VALUES (1, $1, $2)",
			Str(fmt.Sprintf("p%d", i)), Time(base.Add(time.Duration(i)*time.Minute)))
	}
	rs := mustQuery(t, db, "SELECT content FROM wall WHERE user_id = 1 ORDER BY date_posted DESC LIMIT 3")
	want := []string{"p9", "p8", "p7"}
	for i, w := range want {
		if rs.Rows[i][0].S != w {
			t.Fatalf("row %d = %q, want %q", i, rs.Rows[i][0].S, w)
		}
	}
	rs = mustQuery(t, db, "SELECT content FROM wall WHERE user_id = 1 ORDER BY date_posted DESC LIMIT 3 OFFSET 2")
	if rs.Rows[0][0].S != "p7" {
		t.Fatalf("offset row = %q", rs.Rows[0][0].S)
	}
}

func TestJoinTwoTables(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE users (name TEXT NOT NULL)")
	mustExec(t, db, "CREATE TABLE profiles (user_id BIGINT NOT NULL, bio TEXT)")
	mustExec(t, db, "CREATE INDEX idx_prof_user ON profiles (user_id)")
	for i := 1; i <= 3; i++ {
		mustExec(t, db, "INSERT INTO users (name) VALUES ($1)", Str(fmt.Sprintf("u%d", i)))
		mustExec(t, db, "INSERT INTO profiles (user_id, bio) VALUES ($1, $2)",
			I64(int64(i)), Str(fmt.Sprintf("bio%d", i)))
	}
	rs := mustQuery(t, db,
		"SELECT users.name, profiles.bio FROM users JOIN profiles ON profiles.user_id = users.id WHERE users.id = 2")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "u2" || rs.Rows[0][1].S != "bio2" {
		t.Fatalf("rows = %+v", rs.Rows)
	}
}

func TestJoinChainThreeTables(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE users (name TEXT)")
	mustExec(t, db, "CREATE TABLE groups (name TEXT)")
	mustExec(t, db, "CREATE TABLE membership (user_id BIGINT NOT NULL, group_id BIGINT NOT NULL)")
	mustExec(t, db, "CREATE INDEX idx_m_user ON membership (user_id)")
	mustExec(t, db, "CREATE INDEX idx_m_group ON membership (group_id)")
	mustExec(t, db, "INSERT INTO users (name) VALUES ('alice')")
	mustExec(t, db, "INSERT INTO users (name) VALUES ('bob')")
	mustExec(t, db, "INSERT INTO groups (name) VALUES ('go')")
	mustExec(t, db, "INSERT INTO groups (name) VALUES ('dbs')")
	// alice in both groups, bob in dbs only.
	mustExec(t, db, "INSERT INTO membership (user_id, group_id) VALUES (1, 1)")
	mustExec(t, db, "INSERT INTO membership (user_id, group_id) VALUES (1, 2)")
	mustExec(t, db, "INSERT INTO membership (user_id, group_id) VALUES (2, 2)")
	rs := mustQuery(t, db,
		"SELECT groups.name FROM membership JOIN groups ON membership.group_id = groups.id JOIN users ON membership.user_id = users.id WHERE users.name = 'alice' ORDER BY groups.name")
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "dbs" || rs.Rows[1][0].S != "go" {
		t.Fatalf("rows = %+v", rs.Rows)
	}
}

func TestInPredicate(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	for i := 1; i <= 6; i++ {
		mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES ($1, 'x')", I64(int64(i)))
	}
	rs := mustQuery(t, db, "SELECT user_id FROM wall WHERE user_id IN (2, 4, 9)")
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
}

func TestNullSemantics(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (NULL, 'has-null')")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, 'no-null')")
	// NULL never matches equality.
	rs := mustQuery(t, db, "SELECT b FROM t WHERE a = 1")
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	rs = mustQuery(t, db, "SELECT b FROM t WHERE a IS NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "has-null" {
		t.Fatalf("IS NULL rows = %+v", rs.Rows)
	}
	rs = mustQuery(t, db, "SELECT b FROM t WHERE a IS NOT NULL")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "no-null" {
		t.Fatalf("IS NOT NULL rows = %+v", rs.Rows)
	}
}

func TestNotNullViolation(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	if _, err := db.Exec("INSERT INTO wall (content) VALUES ('orphan')"); !errors.Is(err, ErrNullViolation) {
		t.Fatalf("err = %v", err)
	}
}

func TestUniqueIndexViolation(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE users (email TEXT NOT NULL)")
	mustExec(t, db, "CREATE UNIQUE INDEX idx_email ON users (email)")
	mustExec(t, db, "INSERT INTO users (email) VALUES ('a@x.com')")
	if _, err := db.Exec("INSERT INTO users (email) VALUES ('a@x.com')"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
	// The failed autocommit insert must leave no residue.
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM users")
	if rs.Rows[0][0].I != 1 {
		t.Fatalf("count = %d", rs.Rows[0][0].I)
	}
}

func TestReturning(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	res := mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (9, 'r') RETURNING id, content")
	if len(res.Returning) != 1 || res.Returning[0][0].I != 1 || res.Returning[0][1].S != "r" {
		t.Fatalf("returning = %+v", res.Returning)
	}
}

func TestTxnCommitAndRollback(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)

	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO wall (user_id, content) VALUES (1, 'kept')"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = db.Begin()
	if _, err := tx.Exec("INSERT INTO wall (user_id, content) VALUES (1, 'dropped')"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE wall SET content = 'mutated' WHERE user_id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	rs := mustQuery(t, db, "SELECT content FROM wall WHERE user_id = 1")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "kept" {
		t.Fatalf("after rollback rows = %+v", rs.Rows)
	}
}

func TestTxnRollbackRestoresIndexes(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (5, 'orig')")
	tx := db.Begin()
	if _, err := tx.Exec("UPDATE wall SET user_id = 6 WHERE user_id = 5"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, db, "SELECT content FROM wall WHERE user_id = 5")
	if len(rs.Rows) != 1 {
		t.Fatal("index lookup after rollback failed")
	}
	rs = mustQuery(t, db, "SELECT COUNT(*) FROM wall WHERE user_id = 6")
	if rs.Rows[0][0].I != 0 {
		t.Fatal("stale index entry after rollback")
	}
}

func TestTxnIsolationWriteBlocksRead(t *testing.T) {
	db := MustOpen(Config{LockTimeout: 200 * time.Millisecond})
	setupWall(t, db)
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (1, 'x')")

	tx := db.Begin()
	if _, err := tx.Exec("UPDATE wall SET content = 'y' WHERE user_id = 1"); err != nil {
		t.Fatal(err)
	}
	// A concurrent reader must block and time out while the writer holds
	// the exclusive lock.
	_, err := db.Query("SELECT * FROM wall WHERE user_id = 1")
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("reader err = %v, want lock timeout", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, db, "SELECT content FROM wall WHERE user_id = 1")
	if rs.Rows[0][0].S != "y" {
		t.Fatal("committed write not visible")
	}
}

func TestTxnDoneErrors(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO wall (user_id) VALUES (1)"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit err = %v", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback after commit should be no-op, got %v", err)
	}
}

func TestTriggerFiresOnInsertUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	var mu sync.Mutex
	events := []string{}
	record := func(op TriggerOp) TriggerFunc {
		return func(q Queryer, ev TriggerEvent) error {
			mu.Lock()
			defer mu.Unlock()
			switch op {
			case TrigInsert:
				events = append(events, "ins:"+ev.New[2].S)
			case TrigUpdate:
				events = append(events, "upd:"+ev.Old[2].S+"->"+ev.New[2].S)
			case TrigDelete:
				events = append(events, "del:"+ev.Old[2].S)
			}
			return nil
		}
	}
	for _, op := range []TriggerOp{TrigInsert, TrigUpdate, TrigDelete} {
		if err := db.CreateTrigger(Trigger{
			Name: "t_" + op.String(), Table: "wall", Op: op, Fn: record(op),
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (1, 'a')")
	mustExec(t, db, "UPDATE wall SET content = 'b' WHERE user_id = 1")
	mustExec(t, db, "DELETE FROM wall WHERE user_id = 1")
	want := []string{"ins:a", "upd:a->b", "del:b"}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestTriggerErrorAbortsStatement(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	if err := db.CreateTrigger(Trigger{
		Name: "veto", Table: "wall", Op: TrigInsert,
		Fn: func(q Queryer, ev TriggerEvent) error {
			return errors.New("vetoed")
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO wall (user_id, content) VALUES (1, 'x')"); err == nil {
		t.Fatal("insert with failing trigger succeeded")
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM wall")
	if rs.Rows[0][0].I != 0 {
		t.Fatal("aborted insert left a row behind")
	}
}

func TestTriggerReentrantRead(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	var sawCount int64 = -1
	if err := db.CreateTrigger(Trigger{
		Name: "reread", Table: "wall", Op: TrigInsert,
		Fn: func(q Queryer, ev TriggerEvent) error {
			// Reading the table we are mutating must not self-deadlock.
			rs, err := q.Query("SELECT COUNT(*) FROM wall WHERE user_id = $1", ev.New[1])
			if err != nil {
				return err
			}
			sawCount = rs.Rows[0][0].I
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES (3, 'x')")
	if sawCount != 1 {
		t.Fatalf("trigger saw count %d, want 1 (its own row visible)", sawCount)
	}
}

func TestTriggersDisabledToggle(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	fired := 0
	if err := db.CreateTrigger(Trigger{
		Name: "count", Table: "wall", Op: TrigInsert,
		Fn: func(q Queryer, ev TriggerEvent) error {
			fired++
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	db.SetTriggersEnabled(false)
	mustExec(t, db, "INSERT INTO wall (user_id) VALUES (1)")
	db.SetTriggersEnabled(true)
	mustExec(t, db, "INSERT INTO wall (user_id) VALUES (2)")
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestDropTrigger(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	fn := func(q Queryer, ev TriggerEvent) error { return nil }
	if err := db.CreateTrigger(Trigger{Name: "x", Table: "wall", Op: TrigInsert, Fn: fn}); err != nil {
		t.Fatal(err)
	}
	if !db.DropTrigger("wall", "x") {
		t.Fatal("DropTrigger returned false")
	}
	if db.DropTrigger("wall", "x") {
		t.Fatal("second DropTrigger returned true")
	}
	if n := len(db.Triggers("wall", TrigInsert)); n != 0 {
		t.Fatalf("%d triggers remain", n)
	}
}

func TestConcurrentInsertsDistinctTables(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE a (v INT)")
	mustExec(t, db, "CREATE TABLE b (v INT)")
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for _, tbl := range []string{"a", "b"} {
		wg.Add(1)
		go func(tbl string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s (v) VALUES ($1)", tbl), I64(int64(i))); err != nil {
					errCh <- err
					return
				}
			}
		}(tbl)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for _, tbl := range []string{"a", "b"} {
		rs := mustQuery(t, db, "SELECT COUNT(*) FROM "+tbl)
		if rs.Rows[0][0].I != 200 {
			t.Fatalf("%s count = %d", tbl, rs.Rows[0][0].I)
		}
	}
}

func TestConcurrentSameTableSerializes(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE c (v INT)")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Exec("INSERT INTO c (v) VALUES (1)"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM c")
	if rs.Rows[0][0].I != 400 {
		t.Fatalf("count = %d", rs.Rows[0][0].I)
	}
}

// TestRandomizedAgainstReference runs a random single-table workload and
// cross-checks results against an in-memory reference model.
func TestRandomizedAgainstReference(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE r (k INT NOT NULL, v TEXT)")
	mustExec(t, db, "CREATE INDEX idx_r_k ON r (k)")
	rng := rand.New(rand.NewSource(99))
	type refRow struct {
		id int64
		k  int64
		v  string
	}
	ref := map[int64]refRow{}
	for step := 0; step < 2000; step++ {
		k := int64(rng.Intn(20))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert
			v := fmt.Sprintf("v%d", step)
			res := mustExec(t, db, "INSERT INTO r (k, v) VALUES ($1, $2)", I64(k), Str(v))
			ref[res.LastInsertID] = refRow{id: res.LastInsertID, k: k, v: v}
		case 4, 5: // update by k
			v := fmt.Sprintf("u%d", step)
			res := mustExec(t, db, "UPDATE r SET v = $1 WHERE k = $2", Str(v), I64(k))
			n := 0
			for id, row := range ref {
				if row.k == k {
					row.v = v
					ref[id] = row
					n++
				}
			}
			if res.RowsAffected != n {
				t.Fatalf("step %d: update affected %d, ref %d", step, res.RowsAffected, n)
			}
		case 6: // delete by k
			res := mustExec(t, db, "DELETE FROM r WHERE k = $1", I64(k))
			n := 0
			for id, row := range ref {
				if row.k == k {
					delete(ref, id)
					n++
				}
			}
			if res.RowsAffected != n {
				t.Fatalf("step %d: delete affected %d, ref %d", step, res.RowsAffected, n)
			}
		default: // query by k
			rs := mustQuery(t, db, "SELECT id, v FROM r WHERE k = $1 ORDER BY id", I64(k))
			var want []refRow
			for _, row := range ref {
				if row.k == k {
					want = append(want, row)
				}
			}
			if len(rs.Rows) != len(want) {
				t.Fatalf("step %d: got %d rows, ref %d", step, len(rs.Rows), len(want))
			}
		}
	}
	// Final: every ref row readable by id.
	for id, row := range ref {
		rs := mustQuery(t, db, "SELECT v FROM r WHERE id = $1", I64(id))
		if len(rs.Rows) != 1 || rs.Rows[0][0].S != row.v {
			t.Fatalf("row %d: got %+v, want %q", id, rs.Rows, row.v)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	mustExec(t, db, "INSERT INTO wall (user_id) VALUES (1)")
	mustQuery(t, db, "SELECT * FROM wall")
	st := db.Stats()
	if st.Inserts != 1 || st.Selects != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLargeTableIndexScanMatchesFullScan(t *testing.T) {
	db := newTestDB(t)
	setupWall(t, db)
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO wall (user_id, content) VALUES ($1, $2)",
			I64(int64(i%17)), Str(fmt.Sprintf("c%d", i)))
	}
	// Index path.
	rs1 := mustQuery(t, db, "SELECT id FROM wall WHERE user_id = 5 ORDER BY id")
	// Force a scan path via an inequality that the planner cannot index.
	rs2 := mustQuery(t, db, "SELECT id FROM wall WHERE user_id >= 5 AND user_id <= 5 ORDER BY id")
	if len(rs1.Rows) == 0 || len(rs1.Rows) != len(rs2.Rows) {
		t.Fatalf("index scan %d rows, full scan %d rows", len(rs1.Rows), len(rs2.Rows))
	}
	for i := range rs1.Rows {
		if rs1.Rows[i][0].I != rs2.Rows[i][0].I {
			t.Fatal("index and scan paths disagree")
		}
	}
}
