package sqldb

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"cachegenie/internal/obs"
	"cachegenie/internal/sqlparse"
	"cachegenie/internal/wal"
)

// On-disk layout under Config.DataDir:
//
//	wal/<seq>.wal  — redo log segments (group-commit appended)
//	SNAPSHOT       — full state written by a clean Close (wal record
//	                 stream: meta, then per-table DDL + rows + table meta)
//	EPOCH          — the recovery epoch, bumped on every unclean restart
const (
	walSubdir    = "wal"
	snapshotFile = "SNAPSHOT"
	epochFile    = "EPOCH"
)

// WAL payload record types. The wal package owns Begin/Commit framing;
// these are the engine's redo payloads.
const (
	recInsert    = wal.TypeClient + iota // table + stored row
	recUpdate                            // table + stored new row (pk keyed)
	recDelete                            // table + pk
	recDDL                               // canonical SQL text
	recMeta                              // snapshot only: watermark + nextTxn
	recTableMeta                         // snapshot only: table + nextID
)

// redoRec is one entry in a transaction's redo log, accumulated alongside
// the undo log and appended to the WAL at Commit.
type redoRec struct {
	typ   wal.Type
	table string
	row   Row    // insert/update: the stored row
	pk    int64  // delete
	sql   string // ddl
}

func appendTableName(dst []byte, table string) []byte {
	var n2 [2]byte
	binary.LittleEndian.PutUint16(n2[:], uint16(len(table)))
	dst = append(dst, n2[:]...)
	return append(dst, table...)
}

func cutTableName(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("sqldb: wal payload truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("sqldb: wal payload truncated")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

func appendU64(dst []byte, v uint64) []byte {
	var n8 [8]byte
	binary.LittleEndian.PutUint64(n8[:], v)
	return append(dst, n8[:]...)
}

func (r redoRec) encode() wal.Record {
	var p []byte
	switch r.typ {
	case recInsert, recUpdate:
		p = encodeRow(appendTableName(nil, r.table), r.row)
	case recDelete:
		p = appendU64(appendTableName(nil, r.table), uint64(r.pk))
	case recDDL:
		p = []byte(r.sql)
	}
	return wal.Record{Type: r.typ, Payload: p}
}

// createIndexSQL renders the canonical CREATE INDEX text for redo logging.
func createIndexSQL(ci *sqlparse.CreateIndex) string {
	uniq := ""
	if ci.Unique {
		uniq = "UNIQUE "
	}
	return fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", uniq, ci.Name, ci.Table, strings.Join(ci.Columns, ", "))
}

// applyRecord applies one redo/snapshot record to the in-memory state via
// the raw table operations: no locks (recovery is single-threaded), no
// triggers (their external effects are handled by the recovery-epoch cache
// flush), no stat counters (replay is not traffic).
func (db *DB) applyRecord(rec wal.Record) error {
	switch rec.Type {
	case recInsert, recUpdate:
		table, rest, err := cutTableName(rec.Payload)
		if err != nil {
			return err
		}
		row, err := decodeRow(rest)
		if err != nil {
			return err
		}
		t, err := db.table(table)
		if err != nil {
			return err
		}
		if rec.Type == recInsert {
			_, err = t.insertRaw(row)
			return err
		}
		old, err := t.getRaw(row[t.schema.PKIndex].I)
		if err != nil {
			return err
		}
		_, err = t.updateRaw(old, row)
		return err
	case recDelete:
		table, rest, err := cutTableName(rec.Payload)
		if err != nil {
			return err
		}
		if len(rest) != 8 {
			return fmt.Errorf("sqldb: bad delete record")
		}
		t, err := db.table(table)
		if err != nil {
			return err
		}
		old, err := t.getRaw(int64(binary.LittleEndian.Uint64(rest)))
		if err != nil {
			return err
		}
		return t.deleteRaw(old)
	case recDDL:
		st, err := sqlparse.Parse(string(rec.Payload))
		if err != nil {
			return fmt.Errorf("sqldb: replaying DDL %q: %w", rec.Payload, err)
		}
		switch s := st.(type) {
		case *sqlparse.CreateTable:
			_, err := db.createTable(s)
			return err
		case *sqlparse.CreateIndex:
			return db.addIndexFromAST(s)
		}
		return fmt.Errorf("sqldb: replaying DDL: unexpected statement %T", st)
	case recTableMeta:
		table, rest, err := cutTableName(rec.Payload)
		if err != nil {
			return err
		}
		if len(rest) != 8 {
			return fmt.Errorf("sqldb: bad table-meta record")
		}
		t, err := db.table(table)
		if err != nil {
			return err
		}
		if next := int64(binary.LittleEndian.Uint64(rest)); next > t.nextID {
			t.nextID = next
		}
		return nil
	}
	return fmt.Errorf("sqldb: unknown wal record type %d", rec.Type)
}

// RecoveryInfo describes what Open found on disk.
type RecoveryInfo struct {
	// Epoch is the recovery epoch after this open: persisted, and bumped
	// whenever the previous process did not shut down cleanly. The cache
	// tier reacts to an epoch change by flushing, so pre-crash cached
	// values cannot outlive the crash.
	Epoch uint64
	// SnapshotTables/SnapshotRows count state restored from the clean-
	// shutdown snapshot; Replayed* count WAL work past the snapshot.
	SnapshotTables  int
	SnapshotRows    int
	ReplayedTxns    int
	ReplayedRecords int
	// UncommittedTxns counts transactions found in the log without a
	// commit record — discarded by recovery, never visible.
	UncommittedTxns int
	// TornTail reports the log ended in a torn/corrupt record (truncated
	// on recovery to the clean prefix).
	TornTail bool
	// DurationNanos is recovery wall clock.
	DurationNanos int64
}

func readUintFile(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
}

func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// openDurable recovers on-disk state and attaches the WAL writer.
func (db *DB) openDurable(cfg Config) error {
	start := time.Now()
	dir := cfg.DataDir
	walDir := filepath.Join(dir, walSubdir)
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return err
	}
	epoch, err := readUintFile(filepath.Join(dir, epochFile))
	if err != nil {
		return fmt.Errorf("sqldb: reading epoch: %w", err)
	}

	info := RecoveryInfo{}
	var through, snapNextTxn uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if _, serr := os.Stat(snapPath); serr == nil {
		fstats, err := wal.ReadFile(snapPath, func(rec wal.Record) error {
			switch rec.Type {
			case recMeta:
				if len(rec.Payload) != 16 {
					return fmt.Errorf("sqldb: bad snapshot meta record")
				}
				through = binary.LittleEndian.Uint64(rec.Payload)
				snapNextTxn = binary.LittleEndian.Uint64(rec.Payload[8:])
				return nil
			case recDDL:
				if strings.HasPrefix(string(rec.Payload), "CREATE TABLE") {
					info.SnapshotTables++
				}
			case recInsert:
				info.SnapshotRows++
			}
			return db.applyRecord(rec)
		})
		if err != nil {
			return fmt.Errorf("sqldb: loading snapshot: %w", err)
		}
		if fstats.Torn {
			// The snapshot is written to a temp file and renamed, so a
			// tear here is real corruption, not a crash artifact.
			return fmt.Errorf("sqldb: snapshot %s is corrupt", snapPath)
		}
	} else if !os.IsNotExist(serr) {
		return serr
	}

	rstats, err := wal.ReplayCommitted(walDir, through, true, func(txn int64, recs []wal.Record) error {
		for _, rec := range recs {
			if err := db.applyRecord(rec); err != nil {
				return fmt.Errorf("sqldb: replaying txn %d: %w", txn, err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Segments fully absorbed by the snapshot watermark can linger if the
	// previous clean shutdown crashed between snapshot rename and segment
	// removal; they are dead weight, not evidence of an unclean run.
	if segs, err := wal.ListSegments(walDir); err == nil {
		for _, s := range segs {
			if s.Seq <= through {
				_ = os.Remove(s.Path)
			}
		}
	}

	// Any segment past the watermark means the previous process died with
	// the WAL attached (a clean Close removes them all): bump the epoch so
	// the cache tier knows to flush. First-ever open initializes to 1.
	unclean := rstats.Segments > 0 || rstats.TornTail
	if epoch == 0 {
		epoch = 1
		unclean = true // force the initial persist below
	} else if unclean {
		epoch++
	}
	if unclean {
		if err := writeFileSync(filepath.Join(dir, epochFile), []byte(strconv.FormatUint(epoch, 10))); err != nil {
			return fmt.Errorf("sqldb: persisting epoch: %w", err)
		}
	}

	if next := int64(snapNextTxn); next > db.nextTxn.Load() {
		db.nextTxn.Store(next)
	}
	if rstats.MaxTxn > db.nextTxn.Load() {
		db.nextTxn.Store(rstats.MaxTxn)
	}

	startSeq := rstats.LastSeq
	if through > startSeq {
		startSeq = through
	}
	metrics := &wal.Metrics{}
	w, err := wal.NewWriter(wal.Config{
		Dir:          walDir,
		SegmentBytes: cfg.WALSegmentBytes,
		GroupMax:     cfg.WALGroupMax,
		NoSync:       cfg.WALNoSync,
		Metrics:      metrics,
	}, startSeq+1)
	if err != nil {
		return err
	}

	info.Epoch = epoch
	info.ReplayedTxns = rstats.Txns
	info.ReplayedRecords = rstats.Records
	info.UncommittedTxns = rstats.Uncommitted
	info.TornTail = rstats.TornTail
	info.DurationNanos = time.Since(start).Nanoseconds()
	db.wal = w
	db.walMetrics = metrics
	db.dataDir = dir
	db.epoch.Store(epoch)
	db.recovery = info
	return nil
}

// Epoch returns the persisted recovery epoch (0 on a memory-only DB).
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// Recovery returns what Open found on disk (zero value on a memory-only
// DB).
func (db *DB) Recovery() RecoveryInfo { return db.recovery }

// DataDir returns the durable data directory ("" on a memory-only DB).
func (db *DB) DataDir() string { return db.dataDir }

// RegisterMetrics exposes the engine's durability instrumentation (WAL
// fsync latency, group-commit size, commit/byte counters, recovery info)
// on reg. No-op for a memory-only DB.
func (db *DB) RegisterMetrics(reg *obs.Registry) {
	if db.walMetrics == nil || reg == nil {
		return
	}
	db.walMetrics.Register(reg)
	reg.GaugeFunc("cachegenie_db_recovery_epoch", "",
		"recovery epoch; a bump means the cache tier must flush", func() int64 {
			return int64(db.Epoch())
		})
	reg.GaugeFuncUnit("cachegenie_db_recovery_seconds", "",
		"wall clock the last Open spent in snapshot load + WAL replay",
		obs.UnitNanoseconds, func() int64 {
			return db.recovery.DurationNanos
		})
}

// Crash simulates a kill -9 for tests and drills: the WAL writer is
// abandoned without draining, fsyncing, or snapshotting, and in-flight
// commits fail as if the process had died. In-memory state is left as-is;
// callers discard the handle.
func (db *DB) Crash() {
	if db.wal != nil && db.closed.CompareAndSwap(false, true) {
		db.wal.Abort()
	}
}

// Close shuts a durable DB down cleanly: drain and fsync the group-commit
// writer, write a full-state snapshot with the WAL watermark, then drop the
// absorbed segments. A subsequent Open restores from the snapshot and
// replays zero records. On a memory-only DB Close is a no-op.
func (db *DB) Close() error {
	if db.wal == nil || !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := db.wal.Close()
	through := db.wal.Seq()
	if serr := db.writeSnapshot(through); serr != nil {
		// Keep the WAL segments: the snapshot failed, so they are still
		// the only durable copy of post-previous-snapshot commits.
		if err == nil {
			err = serr
		}
		return err
	}
	walDir := filepath.Join(db.dataDir, walSubdir)
	if segs, lerr := wal.ListSegments(walDir); lerr == nil {
		for _, s := range segs {
			if s.Seq <= through {
				_ = os.Remove(s.Path)
			}
		}
	}
	return err
}

// writeSnapshot serializes full state as a wal record stream to a temp
// file, fsyncs it, and renames it over SNAPSHOT. Ordering per table: DDL
// first (table, then indexes), rows, then table meta so restored nextID
// survives deleted-high-pk histories.
func (db *DB) writeSnapshot(through uint64) error {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)

	buf := wal.AppendRecord(nil, wal.Record{
		Type:    recMeta,
		Payload: appendU64(appendU64(nil, through), uint64(db.nextTxn.Load())),
	})
	var scanErr error
	for _, name := range names {
		t := db.tables[name]
		buf = wal.AppendRecord(buf, wal.Record{Type: recDDL, Payload: []byte(t.schema.String())})
		for _, ix := range t.indexes {
			sql := createIndexSQL(&sqlparse.CreateIndex{
				Name: ix.Name, Table: name, Columns: ix.ColNames(t.schema), Unique: ix.Unique,
			})
			buf = wal.AppendRecord(buf, wal.Record{Type: recDDL, Payload: []byte(sql)})
		}
		scanErr = t.scan(func(row Row) (bool, error) {
			buf = wal.AppendRecord(buf, wal.Record{
				Type:    recInsert,
				Payload: encodeRow(appendTableName(nil, name), row),
			})
			return true, nil
		})
		if scanErr != nil {
			break
		}
		buf = wal.AppendRecord(buf, wal.Record{
			Type:    recTableMeta,
			Payload: appendU64(appendTableName(nil, name), uint64(t.nextID)),
		})
	}
	db.mu.RUnlock()
	if scanErr != nil {
		return scanErr
	}
	return writeFileSync(filepath.Join(db.dataDir, snapshotFile), buf)
}
