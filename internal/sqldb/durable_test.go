package sqldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cachegenie/internal/wal"
)

// durableCfg returns a config for a durable engine in a fresh temp dir.
// WALNoSync keeps tests fast: a simulated crash abandons the process, not
// the kernel, so written-but-unsynced bytes are still in the files.
func durableCfg(t testing.TB) Config {
	t.Helper()
	return Config{DataDir: t.TempDir(), WALNoSync: true}
}

func openDurable(t testing.TB, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", cfg.DataDir, err)
	}
	return db
}

// seedItems creates the table and autocommits n inserts val "v1".."vn"
// (ids 1..n).
func seedItems(t testing.TB, db *DB, n int) {
	t.Helper()
	if _, err := db.Schema("items"); err != nil {
		mustExec(t, db, "CREATE TABLE items (val TEXT)")
	}
	for i := 1; i <= n; i++ {
		mustExec(t, db, "INSERT INTO items (val) VALUES ($1)", Str(fmt.Sprintf("v%d", i)))
	}
}

// itemsPrefix asserts the items table holds exactly ids 1..k with matching
// values for some k, and returns k.
func itemsPrefix(t testing.TB, db *DB) int {
	t.Helper()
	rs, err := db.Query("SELECT id, val FROM items")
	if err != nil {
		t.Fatalf("scan items: %v", err)
	}
	seen := make(map[int64]string, len(rs.Rows))
	for _, row := range rs.Rows {
		seen[row[0].I] = row[1].S
	}
	for i := int64(1); i <= int64(len(seen)); i++ {
		want := fmt.Sprintf("v%d", i)
		if got, ok := seen[i]; !ok || got != want {
			t.Fatalf("items is not an exact commit prefix: id %d = %q (want %q); %d rows total",
				i, got, want, len(seen))
		}
	}
	return len(seen)
}

func TestDurableCrashRecoversExactCommitPrefix(t *testing.T) {
	cfg := durableCfg(t)
	db := openDurable(t, cfg)
	if got := db.Epoch(); got != 1 {
		t.Fatalf("fresh epoch = %d, want 1", got)
	}
	seedItems(t, db, 20)
	db.Crash()

	db2 := openDurable(t, cfg)
	defer db2.Close()
	if got := itemsPrefix(t, db2); got != 20 {
		t.Fatalf("recovered %d rows, want 20", got)
	}
	rec := db2.Recovery()
	// 21 transactions: CREATE TABLE plus 20 inserts.
	if rec.ReplayedTxns != 21 {
		t.Fatalf("ReplayedTxns = %d, want 21", rec.ReplayedTxns)
	}
	if got := db2.Epoch(); got != 2 {
		t.Fatalf("epoch after crash recovery = %d, want 2", got)
	}
}

// TestCleanShutdownReplaysZero is the graceful-shutdown regression: Close
// drains the group-commit writer, snapshots, and absorbs the WAL, so the
// next Open replays nothing and keeps the epoch.
func TestCleanShutdownReplaysZero(t *testing.T) {
	cfg := durableCfg(t)
	db := openDurable(t, cfg)
	seedItems(t, db, 15)
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := openDurable(t, cfg)
	defer db2.Close()
	rec := db2.Recovery()
	if rec.ReplayedRecords != 0 || rec.ReplayedTxns != 0 {
		t.Fatalf("clean shutdown replayed %d records / %d txns, want 0/0",
			rec.ReplayedRecords, rec.ReplayedTxns)
	}
	if rec.SnapshotRows != 15 {
		t.Fatalf("SnapshotRows = %d, want 15", rec.SnapshotRows)
	}
	if got := db2.Epoch(); got != 1 {
		t.Fatalf("epoch after clean restart = %d, want 1 (no bump)", got)
	}
	if got := itemsPrefix(t, db2); got != 15 {
		t.Fatalf("recovered %d rows, want 15", got)
	}
}

func TestUncommittedTxnNotResurrected(t *testing.T) {
	cfg := durableCfg(t)
	db := openDurable(t, cfg)
	seedItems(t, db, 5)
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO items (val) VALUES ($1)", Str("uncommitted")); err != nil {
		t.Fatalf("open-txn insert: %v", err)
	}
	db.Crash() // transaction still open: no commit record ever written

	db2 := openDurable(t, cfg)
	defer db2.Close()
	if got := itemsPrefix(t, db2); got != 5 {
		t.Fatalf("recovered %d rows, want only the 5 committed", got)
	}
}

func TestEpochBumpsOnEveryCrashNotOnCleanClose(t *testing.T) {
	cfg := durableCfg(t)
	db := openDurable(t, cfg)
	seedItems(t, db, 1)
	db.Crash()

	db = openDurable(t, cfg)
	if got := db.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}
	seedItems(t, db, 1) // past the snapshot watermark again
	db.Crash()

	db = openDurable(t, cfg)
	if got := db.Epoch(); got != 3 {
		t.Fatalf("epoch = %d, want 3", got)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db = openDurable(t, cfg)
	defer db.Close()
	if got := db.Epoch(); got != 3 {
		t.Fatalf("epoch after clean close = %d, want 3 (no bump)", got)
	}
}

func TestDurabilityFailureRollsBack(t *testing.T) {
	cfg := durableCfg(t)
	db := openDurable(t, cfg)
	defer db.Close()
	seedItems(t, db, 3)
	db.Crash() // WAL writer gone; the engine itself is still addressable
	if _, err := db.Exec("INSERT INTO items (val) VALUES ($1)", Str("lost")); err == nil {
		t.Fatal("insert after WAL abort should fail, got nil error")
	}
	// The failed commit must have rolled back so memory matches the log.
	rs, err := db.Query("SELECT id FROM items")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("%d rows after failed durable commit, want 3", len(rs.Rows))
	}
}

// TestRandomizedCrashPointRecoversPrefix is the crash-point property test:
// commit a known sequence, crash, then mangle the log at a random byte
// offset (truncate or flip) and reopen. Whatever the damage, recovery must
// come up with an exact prefix of the committed sequence — never a gap,
// never a mangled row, never a panic — and a second reopen (after the
// torn-tail repair) must agree with the first.
func TestRandomizedCrashPointRecoversPrefix(t *testing.T) {
	const txns = 30
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 25; iter++ {
		cfg := durableCfg(t)
		db := openDurable(t, cfg)
		seedItems(t, db, txns)
		db.Crash()

		segs, err := wal.ListSegments(filepath.Join(cfg.DataDir, "wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("iter %d: wal segments: %v (%d)", iter, err, len(segs))
		}
		path := segs[len(segs)-1].Path
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := rng.Intn(len(data))
		if rng.Intn(2) == 0 {
			data = data[:off] // torn tail
		} else {
			data[off] ^= 0x40 // bit rot mid-log
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		db2 := openDurable(t, cfg)
		k := itemsPrefix(t, db2)
		if k > txns {
			t.Fatalf("iter %d: recovered %d rows from a %d-commit log", iter, k, txns)
		}
		rec := db2.Recovery()
		_ = db2.Close()

		// Reopen: the repair must have left a consistent log behind.
		db3 := openDurable(t, cfg)
		if k2 := itemsPrefix(t, db3); k2 != k {
			t.Fatalf("iter %d: second recovery found %d rows, first found %d (torn=%v)",
				iter, k2, k, rec.TornTail)
		}
		_ = db3.Close()
	}
}
