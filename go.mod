module cachegenie

go 1.24
