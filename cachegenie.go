// Package cachegenie is a Go reproduction of CacheGenie (Gupta, Zeldovich,
// Madden — "A Trigger-Based Middleware Cache for ORMs", Middleware 2011): a
// caching middleware that gives ORM applications declarative caching
// abstractions and keeps the cache consistent automatically with database
// triggers.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - the database engine (sqldb): a relational engine with a SQL subset,
//     B+tree indexes, a buffer pool over a simulated disk, transactions, and
//     row-level AFTER triggers — the stack's PostgreSQL;
//   - the cache (kvcache): a memcached-semantics LRU store with CAS, plus a
//     TCP text protocol with a connection-pooled client (cacheproto) and a
//     consistent-hash cluster client with parallel batch fan-out (cluster);
//   - the ORM (orm): Django-flavoured models and QuerySets with the read
//     interception hook;
//   - the middleware itself (core): cache classes — FeatureQuery,
//     LinkQuery, CountQuery, TopKQuery — declared via Cacheable, with
//     invalidate / update-in-place / TTL consistency strategies;
//   - the §3.3 transactional-cache extension (txcache) and the GlobeCBC
//     template-invalidation baseline (templateinv);
//   - the asynchronous batched invalidation bus (invbus), which decouples
//     trigger firings from cache maintenance;
//   - the evaluation workload (social, workload) reproducing the paper's
//     Pinax experiments.
//
// # Invalidation bus
//
// The paper measures (§5.3) that the dominant trigger cost is the
// trigger→cache hop: opening a connection from a trigger roughly doubles
// INSERT latency, and each cache operation adds a synchronous round trip to
// the write path. Setting Config.AsyncInvalidation routes all trigger
// maintenance through internal/invbus instead: triggers enqueue typed ops
// and return immediately, and per-shard workers coalesce pending ops
// (redundant deletes dedup, adjacent increments merge) and flush them as
// pipelined batches — one connection charge and one round trip per batch.
// Per-key FIFO ordering is preserved via key-hash sharded queues, and
// read-miss repopulation rides the same queues so it serializes correctly
// with pending trigger ops. Config.BatchWindow tunes the coalescing window.
//
// The trade is bounded staleness: in async mode the cache may lag the
// database by roughly the batch window plus queueing delay, and top-K
// reserve exhaustion drops the key for re-read instead of recomputing
// inside the trigger's transaction. Prefer the default synchronous mode
// (the paper-faithful configuration) when readers require
// read-your-triggered-writes without an explicit Genie.FlushInvalidations.
//
// Quick start
//
//	db, _ := cachegenie.OpenDB(cachegenie.DBConfig{})
//	reg := cachegenie.NewRegistry(db)
//	reg.MustRegister(&cachegenie.ModelDef{
//		Name: "Profile", Table: "profiles",
//		Fields: []cachegenie.FieldDef{
//			{Name: "user_id", Type: cachegenie.TypeInt, NotNull: true},
//			{Name: "bio", Type: cachegenie.TypeText},
//		},
//		Indexes: [][]string{{"user_id"}},
//	})
//	_ = reg.CreateTables()
//
//	genie, _ := cachegenie.New(cachegenie.Config{
//		Registry: reg, DB: db, Cache: cachegenie.NewCache(64 << 20),
//	})
//	_, _ = genie.Cacheable(cachegenie.Spec{
//		Name: "user_profile", Class: cachegenie.FeatureQuery,
//		MainModel: "Profile", WhereFields: []string{"user_id"},
//	})
//
//	// Application code is unchanged: reads are served from the cache,
//	// writes go to the database and triggers keep the cache consistent.
//	profile, _ := reg.Objects("Profile").Filter("user_id", 42).Get()
//	_ = profile
package cachegenie

import (
	"cachegenie/internal/core"
	"cachegenie/internal/invbus"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// Middleware API (internal/core).
type (
	// Genie is the CacheGenie middleware instance.
	Genie = core.Genie
	// Config wires a Genie into an application stack.
	Config = core.Config
	// Spec declares one cached object.
	Spec = core.Spec
	// Link configures a LinkQuery relationship chain.
	Link = core.Link
	// CachedObject is a declared cached object.
	CachedObject = core.CachedObject
	// Class identifies a cache class.
	Class = core.Class
	// Strategy is a cache-consistency strategy.
	Strategy = core.Strategy
)

// Cache classes (paper §3.1).
const (
	FeatureQuery = core.FeatureQuery
	LinkQuery    = core.LinkQuery
	CountQuery   = core.CountQuery
	TopKQuery    = core.TopKQuery
)

// Consistency strategies (paper §3.1).
const (
	UpdateInPlace = core.UpdateInPlace
	Invalidate    = core.Invalidate
	Expiry        = core.Expiry
)

// New creates a Genie and arms transparent interception on the registry.
func New(cfg Config) (*Genie, error) { return core.New(cfg) }

// ORM API (internal/orm).
type (
	// Registry holds models and dispatches reads through the interceptor.
	Registry = orm.Registry
	// ModelDef declares a model.
	ModelDef = orm.ModelDef
	// FieldDef declares one model field.
	FieldDef = orm.FieldDef
	// Fields is the write-side value bag for Insert/Update.
	Fields = orm.Fields
	// Object is one materialized model instance.
	Object = orm.Object
	// QuerySet is the chainable query builder.
	QuerySet = orm.QuerySet
)

// NewRegistry creates an ORM registry over a database connection.
func NewRegistry(conn orm.Conn) *Registry { return orm.NewRegistry(conn) }

// Database engine API (internal/sqldb).
type (
	// DB is the relational database engine.
	DB = sqldb.DB
	// DBConfig configures the engine.
	DBConfig = sqldb.Config
	// Value is a typed SQL value.
	Value = sqldb.Value
	// Row is one table row.
	Row = sqldb.Row
	// Trigger is a row-level AFTER trigger.
	Trigger = sqldb.Trigger
)

// Column types.
const (
	TypeInt   = sqldb.TypeInt
	TypeFloat = sqldb.TypeFloat
	TypeText  = sqldb.TypeText
	TypeBool  = sqldb.TypeBool
	TypeTime  = sqldb.TypeTime
)

// OpenDB creates a database engine. With DBConfig.DataDir unset it is
// memory-only and the error is always nil; with DataDir set, Open recovers
// durable state (snapshot + WAL replay) first.
func OpenDB(cfg DBConfig) (*DB, error) { return sqldb.Open(cfg) }

// Cache API (internal/kvcache).
type (
	// CacheStore is the in-process memcached-semantics store.
	CacheStore = kvcache.Store
	// CacheInterface is the operation set CacheGenie needs from a cache.
	CacheInterface = kvcache.Cache
)

// NewCache creates an in-process cache with the given byte capacity
// (0 = unbounded).
func NewCache(capacityBytes int64) *CacheStore { return kvcache.New(capacityBytes) }

// Invalidation bus API (internal/invbus). The bus is armed through
// Config.AsyncInvalidation and inspected through Genie.InvStats; the types
// are re-exported for callers that drive a bus directly.
type (
	// InvBus is the asynchronous batching invalidation bus.
	InvBus = invbus.Bus
	// InvBusConfig assembles a standalone bus.
	InvBusConfig = invbus.Config
	// InvBusOp is one unit of cache maintenance published to a bus.
	InvBusOp = invbus.Op
	// InvBusStats counts bus activity (enqueued, applied, coalesced,
	// flushes, max batch, max lag, queue-full stalls and stall time).
	InvBusStats = invbus.Stats
)

// NewInvBus creates a standalone invalidation bus over a cache.
func NewInvBus(cfg InvBusConfig) *InvBus { return invbus.New(cfg) }
