// Package cachegenie is a Go reproduction of CacheGenie (Gupta, Zeldovich,
// Madden — "A Trigger-Based Middleware Cache for ORMs", Middleware 2011): a
// caching middleware that gives ORM applications declarative caching
// abstractions and keeps the cache consistent automatically with database
// triggers.
//
// The package re-exports the user-facing API of the internal packages:
//
//   - the database engine (sqldb): a relational engine with a SQL subset,
//     B+tree indexes, a buffer pool over a simulated disk, transactions, and
//     row-level AFTER triggers — the stack's PostgreSQL;
//   - the cache (kvcache): a memcached-semantics LRU store with CAS, plus a
//     TCP text protocol (cacheproto) and a consistent-hash cluster client
//     (cluster);
//   - the ORM (orm): Django-flavoured models and QuerySets with the read
//     interception hook;
//   - the middleware itself (core): cache classes — FeatureQuery,
//     LinkQuery, CountQuery, TopKQuery — declared via Cacheable, with
//     invalidate / update-in-place / TTL consistency strategies;
//   - the §3.3 transactional-cache extension (txcache) and the GlobeCBC
//     template-invalidation baseline (templateinv);
//   - the evaluation workload (social, workload) reproducing the paper's
//     Pinax experiments.
//
// Quick start
//
//	db := cachegenie.OpenDB(cachegenie.DBConfig{})
//	reg := cachegenie.NewRegistry(db)
//	reg.MustRegister(&cachegenie.ModelDef{
//		Name: "Profile", Table: "profiles",
//		Fields: []cachegenie.FieldDef{
//			{Name: "user_id", Type: cachegenie.TypeInt, NotNull: true},
//			{Name: "bio", Type: cachegenie.TypeText},
//		},
//		Indexes: [][]string{{"user_id"}},
//	})
//	_ = reg.CreateTables()
//
//	genie, _ := cachegenie.New(cachegenie.Config{
//		Registry: reg, DB: db, Cache: cachegenie.NewCache(64 << 20),
//	})
//	_, _ = genie.Cacheable(cachegenie.Spec{
//		Name: "user_profile", Class: cachegenie.FeatureQuery,
//		MainModel: "Profile", WhereFields: []string{"user_id"},
//	})
//
//	// Application code is unchanged: reads are served from the cache,
//	// writes go to the database and triggers keep the cache consistent.
//	profile, _ := reg.Objects("Profile").Filter("user_id", 42).Get()
//	_ = profile
package cachegenie

import (
	"cachegenie/internal/core"
	"cachegenie/internal/kvcache"
	"cachegenie/internal/orm"
	"cachegenie/internal/sqldb"
)

// Middleware API (internal/core).
type (
	// Genie is the CacheGenie middleware instance.
	Genie = core.Genie
	// Config wires a Genie into an application stack.
	Config = core.Config
	// Spec declares one cached object.
	Spec = core.Spec
	// Link configures a LinkQuery relationship chain.
	Link = core.Link
	// CachedObject is a declared cached object.
	CachedObject = core.CachedObject
	// Class identifies a cache class.
	Class = core.Class
	// Strategy is a cache-consistency strategy.
	Strategy = core.Strategy
)

// Cache classes (paper §3.1).
const (
	FeatureQuery = core.FeatureQuery
	LinkQuery    = core.LinkQuery
	CountQuery   = core.CountQuery
	TopKQuery    = core.TopKQuery
)

// Consistency strategies (paper §3.1).
const (
	UpdateInPlace = core.UpdateInPlace
	Invalidate    = core.Invalidate
	Expiry        = core.Expiry
)

// New creates a Genie and arms transparent interception on the registry.
func New(cfg Config) (*Genie, error) { return core.New(cfg) }

// ORM API (internal/orm).
type (
	// Registry holds models and dispatches reads through the interceptor.
	Registry = orm.Registry
	// ModelDef declares a model.
	ModelDef = orm.ModelDef
	// FieldDef declares one model field.
	FieldDef = orm.FieldDef
	// Fields is the write-side value bag for Insert/Update.
	Fields = orm.Fields
	// Object is one materialized model instance.
	Object = orm.Object
	// QuerySet is the chainable query builder.
	QuerySet = orm.QuerySet
)

// NewRegistry creates an ORM registry over a database connection.
func NewRegistry(conn orm.Conn) *Registry { return orm.NewRegistry(conn) }

// Database engine API (internal/sqldb).
type (
	// DB is the relational database engine.
	DB = sqldb.DB
	// DBConfig configures the engine.
	DBConfig = sqldb.Config
	// Value is a typed SQL value.
	Value = sqldb.Value
	// Row is one table row.
	Row = sqldb.Row
	// Trigger is a row-level AFTER trigger.
	Trigger = sqldb.Trigger
)

// Column types.
const (
	TypeInt   = sqldb.TypeInt
	TypeFloat = sqldb.TypeFloat
	TypeText  = sqldb.TypeText
	TypeBool  = sqldb.TypeBool
	TypeTime  = sqldb.TypeTime
)

// OpenDB creates a new empty database engine.
func OpenDB(cfg DBConfig) *DB { return sqldb.Open(cfg) }

// Cache API (internal/kvcache).
type (
	// CacheStore is the in-process memcached-semantics store.
	CacheStore = kvcache.Store
	// CacheInterface is the operation set CacheGenie needs from a cache.
	CacheInterface = kvcache.Cache
)

// NewCache creates an in-process cache with the given byte capacity
// (0 = unbounded).
func NewCache(capacityBytes int64) *CacheStore { return kvcache.New(capacityBytes) }
